package dbm

import (
	"fmt"
	"strings"
)

// DBM is a difference bound matrix over dim clocks, where clock 0 is the
// reference clock (always exactly zero). Entry (i, j) bounds xi - xj.
//
// Most operations require the DBM to be in canonical (closed) form, i.e. all
// bounds are the tightest implied by the constraint graph. Constructors and
// all mutating methods documented below preserve canonical form unless stated
// otherwise.
type DBM struct {
	dim int
	m   []Bound // row-major, len dim*dim
}

// New returns the zone in which every clock equals zero (the initial zone of
// a timed automaton). The result is canonical.
func New(dim int) *DBM {
	if dim < 1 {
		panic("dbm: dimension must include the reference clock")
	}
	d := &DBM{dim: dim, m: make([]Bound, dim*dim)}
	for i := range d.m {
		d.m[i] = LEZero
	}
	return d
}

// Universe returns the zone containing every valuation with all clocks ≥ 0.
// The result is canonical.
func Universe(dim int) *DBM {
	d := New(dim)
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			switch {
			case i == j:
				d.set(i, j, LEZero)
			case i == 0:
				d.set(i, j, LEZero) // 0 - xj ≤ 0, i.e. xj ≥ 0
			default:
				d.set(i, j, Infinity)
			}
		}
	}
	return d
}

// Dim returns the number of clocks including the reference clock.
func (d *DBM) Dim() int { return d.dim }

// At returns the bound on xi - xj.
func (d *DBM) At(i, j int) Bound { return d.m[i*d.dim+j] }

func (d *DBM) set(i, j int, b Bound) { d.m[i*d.dim+j] = b }

// Copy returns a deep copy of the DBM.
func (d *DBM) Copy() *DBM {
	c := &DBM{dim: d.dim, m: make([]Bound, len(d.m))}
	copy(c.m, d.m)
	return c
}

// CopyFrom overwrites d with the contents of src, which must have the same
// dimension. This is the in-place counterpart of Copy used with pooled
// matrices.
func (d *DBM) CopyFrom(src *DBM) {
	if d.dim != src.dim {
		panic("dbm: dimension mismatch in CopyFrom")
	}
	copy(d.m, src.m)
}

// SetInit overwrites d with the initial zone in which every clock equals
// zero — the in-place counterpart of New for pooled matrices.
func (d *DBM) SetInit() {
	for i := range d.m {
		d.m[i] = LEZero
	}
}

// IsEmpty reports whether the zone contains no valuation. On a canonical DBM
// emptiness shows up as a diagonal entry below (≤, 0).
func (d *DBM) IsEmpty() bool {
	for i := 0; i < d.dim; i++ {
		if d.At(i, i) < LEZero {
			return true
		}
	}
	return false
}

// Close recomputes the canonical form with Floyd–Warshall shortest paths.
// It returns false if the zone turned out to be empty (in which case the
// contents are unspecified). Rows are sliced out once per pivot so the inner
// loop runs without index arithmetic or bounds checks, and the path sum is
// inlined with only the rkj infinity test (dik is already known finite) —
// Add's symmetric check costs measurably on this innermost loop.
func (d *DBM) Close() bool {
	n := d.dim
	m := d.m
	for k := 0; k < n; k++ {
		rk := m[k*n : k*n+n]
		for i := 0; i < n; i++ {
			ri := m[i*n : i*n+n]
			dik := ri[k]
			if dik == Infinity {
				continue
			}
			for j, rkj := range rk {
				if rkj == Infinity {
					continue
				}
				if v := addFin(dik, rkj); v < ri[j] {
					ri[j] = v
				}
			}
		}
		if rk[k] < LEZero {
			return false
		}
	}
	return !d.IsEmpty()
}

// CloseTouched restores canonical form after entries of the DBM were
// TIGHTENED, given that both clocks of every modified entry are recorded in
// t. It is the batched generalization of Constrain's single-edge update:
// Floyd–Warshall pivots run only over the touched clocks, so the cost is
// O(|t|·n²) instead of O(n³).
//
// Exactness: an entry with a clock outside t is unmodified, so any interior
// node c ∉ t of a shortest path has both adjacent edges unmodified and can be
// contracted through the old closure (the direct edge is itself unmodified,
// hence still the old shortest-path value). Every pair therefore has a
// shortest path whose interior nodes all lie in t, which is exactly what the
// restricted pivot set computes. This argument needs tightening: after
// LOOSENING, the direct edge of a contraction may be the loosened one, and
// the restricted pivots are not exact — use CloseRows for that case.
//
// Above a density threshold (touched clocks ≥ 3/4 of the dimension) it falls
// back to the full Close. Like Close it returns false if the zone turned out
// to be empty, in which case the contents are unspecified.
func (d *DBM) CloseTouched(t *Touched) bool {
	n := d.dim
	if t.Len()*4 >= n*3 {
		return d.Close()
	}
	m := d.m
	for _, k32 := range t.list {
		k := int(k32)
		rk := m[k*n : k*n+n]
		for i := 0; i < n; i++ {
			ri := m[i*n : i*n+n]
			dik := ri[k]
			if dik == Infinity {
				continue
			}
			for j, rkj := range rk {
				if rkj == Infinity {
					continue
				}
				if v := addFin(dik, rkj); v < ri[j] {
					ri[j] = v
				}
			}
		}
		if rk[k] < LEZero {
			return false
		}
	}
	return !d.IsEmpty()
}

// CloseRows restores canonical form after entries of a canonical nonempty
// DBM were LOOSENED, given that every modified entry lies in a row recorded
// in rows or a column recorded in cols (extrapolation records the row of
// every dropped upper bound and the column of every relaxed lower bound).
//
// Loosening needs a different algorithm than tightening: a loosened entry can
// be re-tightened by a path through clocks that were never touched (e.g. a
// dropped x1-x3 bound re-derived from kept x1-x2 and x2-x3 bounds), so
// pivoting only over touched clocks — CloseTouched — is not exact here.
// Instead this runs ALL Floyd–Warshall pivots but restricts the inner update
// to the touched rows and columns, which is sufficient because entries
// outside them kept their old shortest-path values: weights only increased,
// so no untouched entry can tighten, and each keeps its own direct edge. The
// cost is O((|rows|+|cols|)·n²).
//
// Above a density threshold (touched rows plus columns ≥ 3/4 of the
// dimension) it falls back to the full Close. The return value mirrors
// Close; under the stated precondition (canonical nonempty input, entries
// only loosened) the zone cannot become empty and the result is bit-identical
// to a full Close.
func (d *DBM) CloseRows(rows, cols *Touched) bool {
	n := d.dim
	if (rows.Len()+cols.Len())*4 >= n*3 {
		return d.Close()
	}
	m := d.m
	for k := 0; k < n; k++ {
		rk := m[k*n : k*n+n]
		for _, i32 := range rows.list {
			i := int(i32)
			ri := m[i*n : i*n+n]
			dik := ri[k]
			if dik == Infinity {
				continue
			}
			for j, rkj := range rk {
				if rkj == Infinity {
					continue
				}
				if v := addFin(dik, rkj); v < ri[j] {
					ri[j] = v
				}
			}
		}
		for _, j32 := range cols.list {
			j := int(j32)
			dkj := rk[j]
			if dkj == Infinity {
				continue
			}
			for i := 0; i < n; i++ {
				ri := m[i*n : i*n+n]
				if dik := ri[k]; dik != Infinity {
					if v := addFin(dik, dkj); v < ri[j] {
						ri[j] = v
					}
				}
			}
		}
	}
	return !d.IsEmpty()
}

// closeSingle restores canonical form after only the bounds involving clock c
// were tightened. This is the standard O(n²) incremental closure.
func (d *DBM) closeSingle(c int) bool {
	n := d.dim
	m := d.m
	rc := m[c*n : c*n+n]
	for i := 0; i < n; i++ {
		ri := m[i*n : i*n+n]
		dic := ri[c]
		if dic == Infinity {
			continue
		}
		for j, rcj := range rc {
			if rcj == Infinity {
				continue
			}
			if v := addFin(dic, rcj); v < ri[j] {
				ri[j] = v
			}
		}
	}
	return !d.IsEmpty()
}

// Constrain intersects the zone with the constraint xi - xj ≺ c given as a
// Bound, restoring canonical form. It reports whether the result is nonempty.
func (d *DBM) Constrain(i, j int, b Bound) bool {
	if b == Infinity || b >= d.At(i, j) {
		return !d.IsEmpty()
	}
	// The new bound contradicts the reverse path: emptiness check first.
	if Add(d.At(j, i), b) < LEZero {
		d.set(i, i, Add(d.At(j, i), b)) // mark empty on the diagonal
		return false
	}
	d.set(i, j, b)
	// Tighten all paths through the updated edge i -> j.
	n := d.dim
	m := d.m
	rj := m[j*n : j*n+n]
	for p := 0; p < n; p++ {
		rp := m[p*n : p*n+n]
		dpi := rp[i]
		if dpi == Infinity {
			continue
		}
		via := Add(dpi, b)
		for q, rjq := range rj {
			if rjq == Infinity {
				continue
			}
			if v := addFin(via, rjq); v < rp[q] {
				rp[q] = v
			}
		}
	}
	return !d.IsEmpty()
}

// Up removes all upper bounds on clocks, computing the set of time successors
// (delay). Canonical form is preserved.
func (d *DBM) Up() {
	for i := 1; i < d.dim; i++ {
		d.set(i, 0, Infinity)
	}
}

// Down computes the set of time predecessors: lower bounds are relaxed to the
// tightest diagonal constraint, keeping clocks nonnegative. Canonical form is
// preserved.
func (d *DBM) Down() {
	for j := 1; j < d.dim; j++ {
		lo := LEZero
		for i := 1; i < d.dim; i++ {
			if d.At(i, j) < lo {
				lo = d.At(i, j)
			}
		}
		d.set(0, j, lo)
	}
}

// Free removes all constraints on clock c, making its value arbitrary
// (nonnegative). Canonical form is preserved.
func (d *DBM) Free(c int) {
	for i := 0; i < d.dim; i++ {
		if i != c {
			d.set(c, i, Infinity)
			d.set(i, c, d.At(i, 0))
		}
	}
	d.set(c, 0, Infinity)
	d.set(0, c, LEZero)
}

// Reset sets clock c to the constant v ≥ 0. Canonical form is preserved.
func (d *DBM) Reset(c int, v int64) {
	le := LE(v)
	nle := LE(-v)
	for i := 0; i < d.dim; i++ {
		if i == c {
			continue
		}
		d.set(c, i, Add(le, d.At(0, i)))
		d.set(i, c, Add(d.At(i, 0), nle))
	}
	d.set(c, c, LEZero)
}

// CopyClock assigns clock dst the current value of clock src (dst := src).
// Canonical form is preserved.
func (d *DBM) CopyClock(dst, src int) {
	if dst == src {
		return
	}
	for i := 0; i < d.dim; i++ {
		if i != dst {
			d.set(dst, i, d.At(src, i))
			d.set(i, dst, d.At(i, src))
		}
	}
	d.set(dst, src, LEZero)
	d.set(src, dst, LEZero)
	d.set(dst, dst, LEZero)
}

// Relation describes how two zones compare under set inclusion.
type Relation int

const (
	// Different means neither zone includes the other.
	Different Relation = iota
	// Subset means the receiver is strictly included in the argument.
	Subset
	// Superset means the receiver strictly includes the argument.
	Superset
	// Equal means both zones contain exactly the same valuations.
	Equal
)

// Rel compares two canonical DBMs of equal dimension under set inclusion.
func (d *DBM) Rel(o *DBM) Relation {
	sub, sup := true, true
	for i := range d.m {
		if d.m[i] > o.m[i] {
			sub = false
		}
		if d.m[i] < o.m[i] {
			sup = false
		}
		if !sub && !sup {
			return Different
		}
	}
	switch {
	case sub && sup:
		return Equal
	case sub:
		return Subset
	default:
		return Superset
	}
}

// SubsetEq reports whether every valuation of d is contained in o. Both DBMs
// must be canonical and of equal dimension.
func (d *DBM) SubsetEq(o *DBM) bool {
	for i := range d.m {
		if d.m[i] > o.m[i] {
			return false
		}
	}
	return true
}

// Eq reports whether two canonical DBMs denote the same zone.
func (d *DBM) Eq(o *DBM) bool {
	if d.dim != o.dim {
		return false
	}
	for i := range d.m {
		if d.m[i] != o.m[i] {
			return false
		}
	}
	return true
}

// Intersect constrains d with every bound of o, i.e. computes the zone
// intersection. It reports whether the result is nonempty. The result is
// canonical. Callers with a Touched to spare should prefer IntersectTouched,
// which this wraps.
func (d *DBM) Intersect(o *DBM) bool {
	return d.IntersectTouched(o, NewTouched(d.dim))
}

// IntersectTouched is Intersect with caller-provided scratch: the clocks of
// every tightened entry are collected into t (whose previous contents are
// discarded) and canonical form is restored with one CloseTouched over them
// instead of a full Floyd–Warshall. When the zones differ in only a few
// clocks — the common case on guard-shaped intersections — this replaces the
// O(n³) closure with O(|t|·n²).
func (d *DBM) IntersectTouched(o *DBM, t *Touched) bool {
	if d.dim != o.dim {
		panic("dbm: dimension mismatch in Intersect")
	}
	t.Reset()
	for i := 0; i < d.dim; i++ {
		for j := 0; j < d.dim; j++ {
			if o.At(i, j) < d.At(i, j) {
				d.set(i, j, o.At(i, j))
				t.Add(i)
				t.Add(j)
			}
		}
	}
	if t.Len() > 0 {
		return d.CloseTouched(t)
	}
	return !d.IsEmpty()
}

// TightenDeferred records the constraint xi - xj ≺ b like Constrain but
// DEFERS re-canonicalization: the entry is overwritten if tighter and both
// clocks are added to t, leaving the DBM non-canonical until the caller runs
// CloseTouched(t) over the accumulated set. Batching k constraints this way
// costs O(|t|·n²) total instead of Constrain's O(k·n²), which wins whenever
// the constraints mention fewer distinct clocks than there are constraints
// (two-sided guards on one clock, conjunction of bounds per clock).
//
// It returns false when the new bound alone contradicts the zone's current
// reverse bound — a sound early exit (the reverse entry only ever tightens
// between closures), after which the contents are unspecified, matching the
// Constrain contract. Emptiness that only the conjunction implies surfaces in
// the deferred CloseTouched.
func (d *DBM) TightenDeferred(i, j int, b Bound, t *Touched) bool {
	if b == Infinity || b >= d.At(i, j) {
		return true
	}
	if Add(d.At(j, i), b) < LEZero {
		d.set(i, i, Add(d.At(j, i), b)) // mark empty on the diagonal
		return false
	}
	d.set(i, j, b)
	t.Add(i)
	t.Add(j)
	return true
}

// Contains reports whether the concrete valuation v (indexed by clock, with
// v[0] ignored and treated as 0) satisfies every constraint of the zone.
func (d *DBM) Contains(v []int64) bool {
	if len(v) < d.dim {
		panic("dbm: valuation too short")
	}
	val := func(i int) int64 {
		if i == 0 {
			return 0
		}
		return v[i]
	}
	for i := 0; i < d.dim; i++ {
		for j := 0; j < d.dim; j++ {
			b := d.At(i, j)
			if b == Infinity {
				continue
			}
			diff := val(i) - val(j)
			if b.Weak() {
				if diff > b.Value() {
					return false
				}
			} else if diff >= b.Value() {
				return false
			}
		}
	}
	return true
}

// Sup returns the upper bound of clock c in the zone, i.e. the bound on
// xc - x0. The result may be Infinity.
func (d *DBM) Sup(c int) Bound { return d.At(c, 0) }

// Inf returns the lower bound of clock c as a nonnegative bound: if the zone
// implies xc ≥ v (resp. > v) the result is (≤ v) (resp. (< v)) after
// negation of the stored x0 - xc bound.
func (d *DBM) Inf(c int) Bound {
	b := d.At(0, c)
	if b == Infinity {
		return Infinity
	}
	return MakeBound(-b.Value(), b.Weak())
}

// Hash returns a hash of the matrix contents, suitable for keying
// passed-state stores. Bounds are mixed a full 64-bit word at a time
// (FNV-1a over words with a splitmix-style finalizer) rather than byte by
// byte, which is ~8x fewer multiplies on the exploration hot path.
func (d *DBM) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 0x9E3779B97F4A7C15 // 2^64 / golden ratio
	)
	h := uint64(offset)
	for _, b := range d.m {
		h = (h ^ uint64(b)) * prime
	}
	// Finalizer: word-wise FNV mixes the low bits poorly, so avalanche
	// before the value is used for bucket selection.
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return h
}

// String renders the DBM constraint by constraint for debugging.
func (d *DBM) String() string {
	var sb strings.Builder
	sb.WriteString("{")
	first := true
	for i := 0; i < d.dim; i++ {
		for j := 0; j < d.dim; j++ {
			if i == j || d.At(i, j) == Infinity {
				continue
			}
			if !first {
				sb.WriteString(", ")
			}
			first = false
			fmt.Fprintf(&sb, "x%d-x%d%s", i, j, d.At(i, j))
		}
	}
	sb.WriteString("}")
	return sb.String()
}
