package dbm

import (
	"fmt"
	"strings"
)

// DBM is a difference bound matrix over dim clocks, where clock 0 is the
// reference clock (always exactly zero). Entry (i, j) bounds xi - xj.
//
// Most operations require the DBM to be in canonical (closed) form, i.e. all
// bounds are the tightest implied by the constraint graph. Constructors and
// all mutating methods documented below preserve canonical form unless stated
// otherwise.
type DBM struct {
	dim int
	m   []Bound // row-major, len dim*dim
}

// New returns the zone in which every clock equals zero (the initial zone of
// a timed automaton). The result is canonical.
func New(dim int) *DBM {
	if dim < 1 {
		panic("dbm: dimension must include the reference clock")
	}
	d := &DBM{dim: dim, m: make([]Bound, dim*dim)}
	for i := range d.m {
		d.m[i] = LEZero
	}
	return d
}

// Universe returns the zone containing every valuation with all clocks ≥ 0.
// The result is canonical.
func Universe(dim int) *DBM {
	d := New(dim)
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			switch {
			case i == j:
				d.set(i, j, LEZero)
			case i == 0:
				d.set(i, j, LEZero) // 0 - xj ≤ 0, i.e. xj ≥ 0
			default:
				d.set(i, j, Infinity)
			}
		}
	}
	return d
}

// Dim returns the number of clocks including the reference clock.
func (d *DBM) Dim() int { return d.dim }

// At returns the bound on xi - xj.
func (d *DBM) At(i, j int) Bound { return d.m[i*d.dim+j] }

func (d *DBM) set(i, j int, b Bound) { d.m[i*d.dim+j] = b }

// Copy returns a deep copy of the DBM.
func (d *DBM) Copy() *DBM {
	c := &DBM{dim: d.dim, m: make([]Bound, len(d.m))}
	copy(c.m, d.m)
	return c
}

// CopyFrom overwrites d with the contents of src, which must have the same
// dimension. This is the in-place counterpart of Copy used with pooled
// matrices.
func (d *DBM) CopyFrom(src *DBM) {
	if d.dim != src.dim {
		panic("dbm: dimension mismatch in CopyFrom")
	}
	copy(d.m, src.m)
}

// SetInit overwrites d with the initial zone in which every clock equals
// zero — the in-place counterpart of New for pooled matrices.
func (d *DBM) SetInit() {
	for i := range d.m {
		d.m[i] = LEZero
	}
}

// IsEmpty reports whether the zone contains no valuation. On a canonical DBM
// emptiness shows up as a diagonal entry below (≤, 0).
func (d *DBM) IsEmpty() bool {
	for i := 0; i < d.dim; i++ {
		if d.At(i, i) < LEZero {
			return true
		}
	}
	return false
}

// Close recomputes the canonical form with Floyd–Warshall shortest paths.
// It returns false if the zone turned out to be empty (in which case the
// contents are unspecified). Rows are sliced out once per pivot so the inner
// loop runs without index arithmetic or bounds checks.
func (d *DBM) Close() bool {
	n := d.dim
	m := d.m
	for k := 0; k < n; k++ {
		rk := m[k*n : k*n+n]
		for i := 0; i < n; i++ {
			ri := m[i*n : i*n+n]
			dik := ri[k]
			if dik == Infinity {
				continue
			}
			for j, rkj := range rk {
				if v := Add(dik, rkj); v < ri[j] {
					ri[j] = v
				}
			}
		}
		if rk[k] < LEZero {
			return false
		}
	}
	return !d.IsEmpty()
}

// closeSingle restores canonical form after only the bounds involving clock c
// were tightened. This is the standard O(n²) incremental closure.
func (d *DBM) closeSingle(c int) bool {
	n := d.dim
	m := d.m
	rc := m[c*n : c*n+n]
	for i := 0; i < n; i++ {
		ri := m[i*n : i*n+n]
		dic := ri[c]
		if dic == Infinity {
			continue
		}
		for j, rcj := range rc {
			if v := Add(dic, rcj); v < ri[j] {
				ri[j] = v
			}
		}
	}
	return !d.IsEmpty()
}

// Constrain intersects the zone with the constraint xi - xj ≺ c given as a
// Bound, restoring canonical form. It reports whether the result is nonempty.
func (d *DBM) Constrain(i, j int, b Bound) bool {
	if b == Infinity || b >= d.At(i, j) {
		return !d.IsEmpty()
	}
	// The new bound contradicts the reverse path: emptiness check first.
	if Add(d.At(j, i), b) < LEZero {
		d.set(i, i, Add(d.At(j, i), b)) // mark empty on the diagonal
		return false
	}
	d.set(i, j, b)
	// Tighten all paths through the updated edge i -> j.
	n := d.dim
	m := d.m
	rj := m[j*n : j*n+n]
	for p := 0; p < n; p++ {
		rp := m[p*n : p*n+n]
		dpi := rp[i]
		if dpi == Infinity {
			continue
		}
		via := Add(dpi, b)
		for q, rjq := range rj {
			if v := Add(via, rjq); v < rp[q] {
				rp[q] = v
			}
		}
	}
	return !d.IsEmpty()
}

// Up removes all upper bounds on clocks, computing the set of time successors
// (delay). Canonical form is preserved.
func (d *DBM) Up() {
	for i := 1; i < d.dim; i++ {
		d.set(i, 0, Infinity)
	}
}

// Down computes the set of time predecessors: lower bounds are relaxed to the
// tightest diagonal constraint, keeping clocks nonnegative. Canonical form is
// preserved.
func (d *DBM) Down() {
	for j := 1; j < d.dim; j++ {
		lo := LEZero
		for i := 1; i < d.dim; i++ {
			if d.At(i, j) < lo {
				lo = d.At(i, j)
			}
		}
		d.set(0, j, lo)
	}
}

// Free removes all constraints on clock c, making its value arbitrary
// (nonnegative). Canonical form is preserved.
func (d *DBM) Free(c int) {
	for i := 0; i < d.dim; i++ {
		if i != c {
			d.set(c, i, Infinity)
			d.set(i, c, d.At(i, 0))
		}
	}
	d.set(c, 0, Infinity)
	d.set(0, c, LEZero)
}

// Reset sets clock c to the constant v ≥ 0. Canonical form is preserved.
func (d *DBM) Reset(c int, v int64) {
	le := LE(v)
	nle := LE(-v)
	for i := 0; i < d.dim; i++ {
		if i == c {
			continue
		}
		d.set(c, i, Add(le, d.At(0, i)))
		d.set(i, c, Add(d.At(i, 0), nle))
	}
	d.set(c, c, LEZero)
}

// CopyClock assigns clock dst the current value of clock src (dst := src).
// Canonical form is preserved.
func (d *DBM) CopyClock(dst, src int) {
	if dst == src {
		return
	}
	for i := 0; i < d.dim; i++ {
		if i != dst {
			d.set(dst, i, d.At(src, i))
			d.set(i, dst, d.At(i, src))
		}
	}
	d.set(dst, src, LEZero)
	d.set(src, dst, LEZero)
	d.set(dst, dst, LEZero)
}

// Relation describes how two zones compare under set inclusion.
type Relation int

const (
	// Different means neither zone includes the other.
	Different Relation = iota
	// Subset means the receiver is strictly included in the argument.
	Subset
	// Superset means the receiver strictly includes the argument.
	Superset
	// Equal means both zones contain exactly the same valuations.
	Equal
)

// Rel compares two canonical DBMs of equal dimension under set inclusion.
func (d *DBM) Rel(o *DBM) Relation {
	sub, sup := true, true
	for i := range d.m {
		if d.m[i] > o.m[i] {
			sub = false
		}
		if d.m[i] < o.m[i] {
			sup = false
		}
		if !sub && !sup {
			return Different
		}
	}
	switch {
	case sub && sup:
		return Equal
	case sub:
		return Subset
	default:
		return Superset
	}
}

// SubsetEq reports whether every valuation of d is contained in o. Both DBMs
// must be canonical and of equal dimension.
func (d *DBM) SubsetEq(o *DBM) bool {
	for i := range d.m {
		if d.m[i] > o.m[i] {
			return false
		}
	}
	return true
}

// Eq reports whether two canonical DBMs denote the same zone.
func (d *DBM) Eq(o *DBM) bool {
	if d.dim != o.dim {
		return false
	}
	for i := range d.m {
		if d.m[i] != o.m[i] {
			return false
		}
	}
	return true
}

// Intersect constrains d with every bound of o, i.e. computes the zone
// intersection. It reports whether the result is nonempty. The result is
// canonical.
func (d *DBM) Intersect(o *DBM) bool {
	if d.dim != o.dim {
		panic("dbm: dimension mismatch in Intersect")
	}
	changed := false
	for i := 0; i < d.dim; i++ {
		for j := 0; j < d.dim; j++ {
			if o.At(i, j) < d.At(i, j) {
				d.set(i, j, o.At(i, j))
				changed = true
			}
		}
	}
	if changed {
		return d.Close()
	}
	return !d.IsEmpty()
}

// Contains reports whether the concrete valuation v (indexed by clock, with
// v[0] ignored and treated as 0) satisfies every constraint of the zone.
func (d *DBM) Contains(v []int64) bool {
	if len(v) < d.dim {
		panic("dbm: valuation too short")
	}
	val := func(i int) int64 {
		if i == 0 {
			return 0
		}
		return v[i]
	}
	for i := 0; i < d.dim; i++ {
		for j := 0; j < d.dim; j++ {
			b := d.At(i, j)
			if b == Infinity {
				continue
			}
			diff := val(i) - val(j)
			if b.Weak() {
				if diff > b.Value() {
					return false
				}
			} else if diff >= b.Value() {
				return false
			}
		}
	}
	return true
}

// Sup returns the upper bound of clock c in the zone, i.e. the bound on
// xc - x0. The result may be Infinity.
func (d *DBM) Sup(c int) Bound { return d.At(c, 0) }

// Inf returns the lower bound of clock c as a nonnegative bound: if the zone
// implies xc ≥ v (resp. > v) the result is (≤ v) (resp. (< v)) after
// negation of the stored x0 - xc bound.
func (d *DBM) Inf(c int) Bound {
	b := d.At(0, c)
	if b == Infinity {
		return Infinity
	}
	return MakeBound(-b.Value(), b.Weak())
}

// Hash returns a hash of the matrix contents, suitable for keying
// passed-state stores. Bounds are mixed a full 64-bit word at a time
// (FNV-1a over words with a splitmix-style finalizer) rather than byte by
// byte, which is ~8x fewer multiplies on the exploration hot path.
func (d *DBM) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 0x9E3779B97F4A7C15 // 2^64 / golden ratio
	)
	h := uint64(offset)
	for _, b := range d.m {
		h = (h ^ uint64(b)) * prime
	}
	// Finalizer: word-wise FNV mixes the low bits poorly, so avalanche
	// before the value is used for bucket selection.
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return h
}

// String renders the DBM constraint by constraint for debugging.
func (d *DBM) String() string {
	var sb strings.Builder
	sb.WriteString("{")
	first := true
	for i := 0; i < d.dim; i++ {
		for j := 0; j < d.dim; j++ {
			if i == j || d.At(i, j) == Infinity {
				continue
			}
			if !first {
				sb.WriteString(", ")
			}
			first = false
			fmt.Fprintf(&sb, "x%d-x%d%s", i, j, d.At(i, j))
		}
	}
	sb.WriteString("}")
	return sb.String()
}
