package dbm

import (
	"encoding/binary"
	"math"
)

// Compact is a stored zone in packed form: a 16-byte header followed by the
// dim² bounds at a narrow fixed width. Canonical DBMs in extrapolated
// explorations have all finite bounds clamped to the model horizon, so almost
// every stored zone fits 16-bit (or at worst 32-bit) encoded bounds; the full
// 64-bit form remains as a width escape so the encoding is total.
//
// Layout:
//
//	[0]     width code: 2, 4 or 8 (bytes per bound)
//	[1]     reserved (zero)
//	[2:4]   dim, uint16 little-endian
//	[4:8]   reserved (zero)
//	[8:16]  inclusion score, int64 little-endian (see InclusionScore)
//	[16:]   dim² bounds, row-major, width bytes each, little-endian
//
// Narrow widths store the encoded Bound (value<<1|weak) as int16/int32 with
// math.MaxInt16/math.MaxInt32 as the Infinity sentinel; width 8 stores the
// Bound verbatim (Infinity is already math.MaxInt64). Inclusion tests run
// directly on the packed payload — admission never decodes a stored zone.
type Compact []byte

const compactHeader = 16

// scoreClamp caps each entry's contribution to the inclusion score so that
// Infinity does not swamp the sum: min(b, scoreClamp) is still monotone in b,
// which is all the pre-filter needs.
const scoreClamp Bound = 1 << 40

// InclusionScore returns Σ min(bound, clamp) over all entries of a DBM. Each
// term is monotone in the bound, so d ⊆ z (entrywise d ≤ z) implies
// InclusionScore(d) ≤ InclusionScore(z). Stores use the contrapositive as a
// constant-time pre-filter before the full entrywise inclusion scan.
func InclusionScore(d *DBM) int64 {
	var s int64
	for _, b := range d.m {
		if b > scoreClamp {
			b = scoreClamp
		}
		s += int64(b)
	}
	return s
}

// Dim returns the clock count of the packed zone.
func (c Compact) Dim() int { return int(binary.LittleEndian.Uint16(c[2:4])) }

// Width returns the payload width in bytes per bound (2, 4 or 8).
func (c Compact) Width() int { return int(c[0]) }

// Score returns the inclusion score recorded at encode time; it equals
// InclusionScore of the decoded zone.
func (c Compact) Score() int64 { return int64(binary.LittleEndian.Uint64(c[8:16])) }

// EncodeCompact packs a canonical DBM into the narrowest width that holds all
// its finite bounds, drawing the buffer from p (which may be nil for a plain
// allocation). The bounds themselves are stored encoded, so the pack is a
// single scan plus a single copy — no per-entry decode.
func EncodeCompact(d *DBM, p *CompactPool) Compact {
	lo, hi := Bound(math.MaxInt64), Bound(math.MinInt64)
	var score int64
	for _, b := range d.m {
		if b != Infinity {
			if b < lo {
				lo = b
			}
			if b > hi {
				hi = b
			}
		}
		if b > scoreClamp {
			b = scoreClamp
		}
		score += int64(b)
	}
	width := 8
	switch {
	// The sentinel value itself must stay unrepresentable as a finite bound.
	case lo >= math.MinInt16 && hi < math.MaxInt16:
		width = 2
	case lo >= math.MinInt32 && hi < math.MaxInt32:
		width = 4
	}
	n := d.dim * d.dim
	c := p.get(compactHeader + n*width)
	c[0] = byte(width)
	c[1] = 0
	binary.LittleEndian.PutUint16(c[2:4], uint16(d.dim))
	binary.LittleEndian.PutUint32(c[4:8], 0)
	binary.LittleEndian.PutUint64(c[8:16], uint64(score))
	pay := c[compactHeader:]
	switch width {
	case 2:
		for i, b := range d.m {
			v := int16(math.MaxInt16)
			if b != Infinity {
				v = int16(b)
			}
			binary.LittleEndian.PutUint16(pay[i*2:], uint16(v))
		}
	case 4:
		for i, b := range d.m {
			v := int32(math.MaxInt32)
			if b != Infinity {
				v = int32(b)
			}
			binary.LittleEndian.PutUint32(pay[i*4:], uint32(v))
		}
	default:
		for i, b := range d.m {
			binary.LittleEndian.PutUint64(pay[i*8:], uint64(b))
		}
	}
	return c
}

// ContainsDBM reports whether d ⊆ c, i.e. every bound of d is at most the
// corresponding packed bound. Both zones must be canonical and of equal
// dimension. The packed payload is compared in place — no decode, no
// allocation.
func (c Compact) ContainsDBM(d *DBM) bool {
	pay := c[compactHeader:]
	switch c[0] {
	case 2:
		for i, b := range d.m {
			v := int16(binary.LittleEndian.Uint16(pay[i*2:]))
			if v == math.MaxInt16 {
				continue // packed entry is Infinity, anything fits
			}
			if b > Bound(v) {
				return false
			}
		}
	case 4:
		for i, b := range d.m {
			v := int32(binary.LittleEndian.Uint32(pay[i*4:]))
			if v == math.MaxInt32 {
				continue
			}
			if b > Bound(v) {
				return false
			}
		}
	default:
		for i, b := range d.m {
			if b > Bound(binary.LittleEndian.Uint64(pay[i*8:])) {
				return false
			}
		}
	}
	return true
}

// SubsetEqDBM reports whether c ⊆ d, i.e. every packed bound is at most the
// corresponding bound of d. Both zones must be canonical and of equal
// dimension. Like ContainsDBM this runs on the packed payload directly.
func (c Compact) SubsetEqDBM(d *DBM) bool {
	pay := c[compactHeader:]
	switch c[0] {
	case 2:
		for i, b := range d.m {
			v := int16(binary.LittleEndian.Uint16(pay[i*2:]))
			if v == math.MaxInt16 {
				if b != Infinity {
					return false // packed Infinity exceeds any finite bound
				}
				continue
			}
			if Bound(v) > b {
				return false
			}
		}
	case 4:
		for i, b := range d.m {
			v := int32(binary.LittleEndian.Uint32(pay[i*4:]))
			if v == math.MaxInt32 {
				if b != Infinity {
					return false
				}
				continue
			}
			if Bound(v) > b {
				return false
			}
		}
	default:
		for i, b := range d.m {
			if Bound(binary.LittleEndian.Uint64(pay[i*8:])) > b {
				return false
			}
		}
	}
	return true
}

// DecodeInto unpacks the zone into d, which must have the same dimension.
func (c Compact) DecodeInto(d *DBM) {
	if d.dim != c.Dim() {
		panic("dbm: dimension mismatch in DecodeInto")
	}
	pay := c[compactHeader:]
	switch c[0] {
	case 2:
		for i := range d.m {
			v := int16(binary.LittleEndian.Uint16(pay[i*2:]))
			if v == math.MaxInt16 {
				d.m[i] = Infinity
			} else {
				d.m[i] = Bound(v)
			}
		}
	case 4:
		for i := range d.m {
			v := int32(binary.LittleEndian.Uint32(pay[i*4:]))
			if v == math.MaxInt32 {
				d.m[i] = Infinity
			} else {
				d.m[i] = Bound(v)
			}
		}
	default:
		for i := range d.m {
			d.m[i] = Bound(binary.LittleEndian.Uint64(pay[i*8:]))
		}
	}
}

// Decode unpacks the zone into a fresh DBM.
func (c Compact) Decode() *DBM {
	d := &DBM{dim: c.Dim(), m: make([]Bound, c.Dim()*c.Dim())}
	c.DecodeInto(d)
	return d
}

// CompactPool recycles Compact buffers by exact byte length, the packed
// counterpart of Pool for stored zones: pruned (subsumed) store entries are
// Put back and the next admission of a same-sized zone reuses the buffer.
// Exact lengths (not power-of-two classes) matter here: every zone of one
// exploration has the same dimension, so a store sees at most three distinct
// buffer sizes — one per encoding width — and class rounding would only
// inflate every stored zone's capacity (up to 2×) for no extra reuse.
// A pool is NOT safe for concurrent use — the sequential store owns one, the
// sharded store owns one per shard and only touches it under the shard lock.
type CompactPool struct {
	free   map[int][]Compact // keyed by exact buffer capacity
	gets   int
	reuses int
}

// NewCompactPool returns an empty pool.
func NewCompactPool() *CompactPool { return &CompactPool{free: make(map[int][]Compact)} }

// get returns a buffer of length n, reusing a free buffer of exactly that
// capacity when available. A nil pool falls back to plain allocation so
// EncodeCompact works standalone.
func (p *CompactPool) get(n int) Compact {
	if p == nil {
		return make(Compact, n)
	}
	p.gets++
	if l := p.free[n]; len(l) > 0 {
		c := l[len(l)-1]
		l[len(l)-1] = nil
		p.free[n] = l[:len(l)-1]
		p.reuses++
		return c[:n]
	}
	return make(Compact, n)
}

// Put returns a buffer to the pool for reuse. The caller must not retain the
// buffer afterwards.
func (p *CompactPool) Put(c Compact) {
	if p == nil || cap(c) == 0 {
		return
	}
	c = c[:cap(c)]
	p.free[len(c)] = append(p.free[len(c)], c)
}

// Stats reports the number of get calls and how many were served by reuse.
func (p *CompactPool) Stats() (gets, reuses int) { return p.gets, p.reuses }
