package dbm

// Pool is a free list of equal-dimension DBMs that lets hot exploration
// loops recycle matrices instead of allocating one per candidate successor.
//
// A Pool is NOT safe for concurrent use: every worker of a parallel
// exploration owns its own Pool. Matrices may migrate between pools (a DBM
// obtained from one pool may be released into another of the same
// dimension); a Pool only hands out matrices of its own dimension and
// silently drops mismatched ones on Put.
//
// Ownership protocol (see the package comment of internal/core for the
// explorer-side invariants): a DBM obtained from Get is exclusively owned by
// the caller until it is either released with Put or handed off to a
// longer-lived owner (a stored state, a passed-store entry). After Put the
// caller must not retain the pointer — the matrix will be reused and
// overwritten.
type Pool struct {
	dim  int
	free []*DBM

	// gets/reuses instrument the pool for tests and diagnostics.
	gets   int
	reuses int
}

// NewPool returns an empty pool handing out DBMs of the given dimension.
func NewPool(dim int) *Pool {
	if dim < 1 {
		panic("dbm: pool dimension must include the reference clock")
	}
	return &Pool{dim: dim}
}

// Dim returns the dimension of the matrices managed by the pool.
func (p *Pool) Dim() int { return p.dim }

// Get returns a DBM of the pool's dimension with unspecified contents. The
// caller must fully initialize it (e.g. with CopyFrom or SetInit) before
// relying on any entry.
func (p *Pool) Get() *DBM {
	p.gets++
	if n := len(p.free); n > 0 {
		d := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.reuses++
		return d
	}
	return &DBM{dim: p.dim, m: make([]Bound, p.dim*p.dim)}
}

// GetCopy returns a pool-backed deep copy of src.
func (p *Pool) GetCopy(src *DBM) *DBM {
	d := p.Get()
	d.CopyFrom(src)
	return d
}

// Put releases a DBM back to the pool. nil and dimension-mismatched matrices
// are dropped, so callers can release unconditionally.
func (p *Pool) Put(d *DBM) {
	if d == nil || d.dim != p.dim {
		return
	}
	p.free = append(p.free, d)
}

// Stats reports how many Gets the pool served and how many of those reused a
// released matrix (the rest allocated).
func (p *Pool) Stats() (gets, reuses int) { return p.gets, p.reuses }

// ZoneBytes returns the in-memory size of one dim-dimensional matrix's bound
// storage — the unit memory-budget accounting multiplies allocation counts
// by (internal/core). Headers and free-list slots are ignored: the dim²
// bounds dominate at every realistic dimension.
func ZoneBytes(dim int) int64 { return int64(dim) * int64(dim) * 8 }
