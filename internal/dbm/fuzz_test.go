package dbm

import (
	"testing"
)

// FuzzIncrementalClose is the differential property harness for the
// incremental canonicalization subsystem: a byte-driven interpreter builds a
// random canonical nonempty zone the way exploration does (delays, resets,
// frees, axis and diagonal constraints), then every incremental operation is
// checked bit-for-bit against a full-Floyd–Warshall reference on a copy:
//
//   - ExtraMTouched / ExtraLUTouched (CloseRows after loosening) vs the
//     loosening scan + full Close, including the changed flag;
//   - IntersectTouched (CloseTouched after tightening) vs entrywise min +
//     full Close, including the emptiness verdict;
//   - batched TightenDeferred + CloseTouched vs a sequential Constrain
//     chain, including the emptiness verdict.
//
// The seed corpus under testdata/fuzz pins the known-delicate shapes (bounds
// re-derived through untouched clocks, empty intersections, batch guards on
// one clock); `go test` replays it on every run, and CI additionally runs a
// short -fuzz smoke.
func FuzzIncrementalClose(f *testing.F) {
	f.Add([]byte{0})
	// Two equal-clock zones intersected after diverging resets.
	f.Add([]byte{2, 0, 1, 2, 9, 2, 1, 30, 0, 3, 1, 5, 12, 40, 7, 0, 8, 1})
	// Wide dimension, many ops, tiny max constants: dense extrapolation.
	f.Add([]byte{4, 0, 1, 1, 3, 2, 2, 25, 3, 1, 2, 4, 3, 0, 5, 1, 2, 17, 1, 1, 1, 2, 2, 2, 9, 9, 9})
	// Diagonal-heavy zone: drops must be re-derived through untouched clocks.
	f.Add([]byte{3, 0, 2, 1, 10, 5, 1, 2, 2, 5, 2, 3, 8, 3, 200, 15, 15, 60, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &byteReader{data: data}
		dim := 2 + int(r.next())%5
		z := buildFuzzZone(r, dim)
		if z.IsEmpty() {
			t.Fatal("zone builder must keep the zone nonempty")
		}

		// --- extrapolation: CloseRows (loosening) vs full Close ---
		max := make([]int64, dim)
		lower := make([]int64, dim)
		upper := make([]int64, dim)
		for c := 1; c < dim; c++ {
			max[c] = int64(r.next()%24) - 2 // negative = never compared
			lower[c] = int64(r.next()%24) - 2
			upper[c] = int64(r.next()%24) - 2
		}
		rows, cols := NewTouched(dim), NewTouched(dim)

		inc := z.Copy()
		ref := z.Copy()
		if inc.ExtraMTouched(max, rows, cols) != extraMFullClose(ref, max) {
			t.Fatalf("ExtraM changed flag diverges on %s", z)
		}
		if !inc.Eq(ref) {
			t.Fatalf("ExtraM diverges:\n got %s\nwant %s\nfrom %s", inc, ref, z)
		}
		assertCanonical(t, "ExtraM", inc)

		incLU := z.Copy()
		refLU := z.Copy()
		if incLU.ExtraLUTouched(lower, upper, rows, cols) != extraLUFullClose(refLU, lower, upper) {
			t.Fatalf("ExtraLU changed flag diverges on %s", z)
		}
		if !incLU.Eq(refLU) {
			t.Fatalf("ExtraLU diverges:\n got %s\nwant %s\nfrom %s", incLU, refLU, z)
		}
		assertCanonical(t, "ExtraLU", incLU)

		// --- Intersect: CloseTouched (tightening) vs full Close ---
		o := buildFuzzZone(r, dim)
		incI := z.Copy()
		refI := z.Copy()
		refChanged := false
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				if o.At(i, j) < refI.At(i, j) {
					refI.set(i, j, o.At(i, j))
					refChanged = true
				}
			}
		}
		okRef := !refI.IsEmpty()
		if refChanged {
			okRef = refI.Close()
		}
		okInc := incI.IntersectTouched(o, NewTouched(dim))
		if okInc != okRef {
			t.Fatalf("Intersect emptiness diverges: inc=%v ref=%v on %s ∩ %s", okInc, okRef, z, o)
		}
		if okRef {
			if !incI.Eq(refI) {
				t.Fatalf("Intersect diverges:\n got %s\nwant %s", incI, refI)
			}
			assertCanonical(t, "Intersect", incI)
		}

		// --- batched deferred tightening vs sequential Constrain ---
		nc := 1 + int(r.next())%4
		type con struct {
			i, j int
			b    Bound
		}
		cons := make([]con, 0, nc)
		for k := 0; k < nc; k++ {
			i := int(r.next()) % dim
			j := int(r.next()) % dim
			if i == j {
				continue
			}
			v := int64(r.next()%28) - 6
			b := LE(v)
			if r.next()%2 == 0 {
				b = LT(v)
			}
			cons = append(cons, con{i, j, b})
		}
		seq := z.Copy()
		okSeq := true
		for _, c := range cons {
			if !seq.Constrain(c.i, c.j, c.b) {
				okSeq = false
				break
			}
		}
		bat := z.Copy()
		tch := NewTouched(dim)
		okBat := true
		for _, c := range cons {
			if !bat.TightenDeferred(c.i, c.j, c.b, tch) {
				okBat = false
				break
			}
		}
		if okBat {
			if tch.Len() == 0 {
				okBat = !bat.IsEmpty()
			} else {
				okBat = bat.CloseTouched(tch)
			}
		}
		if okSeq != okBat {
			t.Fatalf("batch emptiness diverges: seq=%v batch=%v (%d constraints on %s)",
				okSeq, okBat, len(cons), z)
		}
		if okSeq {
			if !seq.Eq(bat) {
				t.Fatalf("batch diverges:\n got %s\nwant %s", bat, seq)
			}
			assertCanonical(t, "batch constrain", bat)
		}
	})
}

// byteReader hands out fuzz input bytes, repeating 0 when exhausted.
type byteReader struct {
	data []byte
	pos  int
}

func (r *byteReader) next() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

// buildFuzzZone replays a short op program from the input bytes, mirroring
// how zones arise during exploration (delay, reset, free, constrain). Ops
// that would empty the zone are rolled back so the result is always a
// canonical nonempty zone.
func buildFuzzZone(r *byteReader, dim int) *DBM {
	d := New(dim)
	steps := 3 + int(r.next())%10
	for s := 0; s < steps; s++ {
		switch r.next() % 6 {
		case 0:
			d.Up()
		case 1:
			d.Reset(1+int(r.next())%(dim-1), int64(r.next()%9))
		case 2:
			c := 1 + int(r.next())%(dim-1)
			prev := d.Copy()
			if !d.Constrain(c, 0, LE(int64(r.next()%25))) {
				d = prev
			}
		case 3:
			c := 1 + int(r.next())%(dim-1)
			prev := d.Copy()
			if !d.Constrain(0, c, LE(-int64(r.next()%12))) {
				d = prev
			}
		case 4:
			d.Free(1 + int(r.next())%(dim-1))
		case 5:
			i := int(r.next()) % dim
			j := int(r.next()) % dim
			if i == j {
				continue
			}
			prev := d.Copy()
			if !d.Constrain(i, j, LE(int64(r.next()%20)-4)) {
				d = prev
			}
		}
	}
	return d
}

// extraLUFullClose is the pre-incremental ExtraLU reference: loosen per the
// Extra_LU rules, then run the full Floyd–Warshall.
func extraLUFullClose(d *DBM, lower, upper []int64) bool {
	n := d.Dim()
	changed := false
	up := func(i int) int64 {
		if i == 0 {
			return 0
		}
		return upper[i]
	}
	lo := func(j int) int64 {
		if j == 0 {
			return 0
		}
		return lower[j]
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b := d.At(i, j)
			if i == j || b == Infinity {
				continue
			}
			if i != 0 && b > LE(up(i)) {
				d.set(i, j, Infinity)
				changed = true
			} else if low := LT(-lo(j)); b < low {
				d.set(i, j, low)
				changed = true
			}
		}
	}
	if changed {
		d.Close()
	}
	return changed
}

// assertCanonical fails unless d is bit-identical to its own full re-closure
// (i.e. already in canonical form).
func assertCanonical(t *testing.T, op string, d *DBM) {
	t.Helper()
	re := d.Copy()
	re.Close()
	if !d.Eq(re) {
		t.Fatalf("%s left a non-canonical DBM:\n got %s\nwant %s", op, d, re)
	}
}
