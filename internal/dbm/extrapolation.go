package dbm

// ExtraM applies the classical maximal-constant extrapolation (Extra_M from
// Behrmann et al., "Lower and Upper Bounds in Zone Based Abstractions of
// Timed Automata") and restores canonical form.
//
// max[c] is the largest constant clock c is ever compared against in guards,
// invariants, or properties; a negative value means the clock is never
// compared and all its bounds may be abstracted away. max[0] is ignored and
// treated as 0.
//
// Soundness: two zones that agree after ExtraM are bisimilar with respect to
// all constraints bounded by max, so reachability of any location/guard in
// the model is preserved. Upper bounds of clocks beyond their max constant
// become Infinity; callers computing sup values (e.g. WCRT) must therefore
// set the measured clock's max constant at least as large as any bound they
// want to observe exactly.
//
// The returned flag reports whether any bound was abstracted.
// Re-canonicalization runs only in that case; the common steady-state case —
// a zone already inside the extrapolation box — is a read-only scan. Callers
// can use the flag to skip downstream work that only matters when the zone
// actually coarsened. This wrapper allocates its own scratch; the
// exploration hot path calls ExtraMTouched with pooled scratch instead.
func (d *DBM) ExtraM(max []int64) bool {
	return d.ExtraMTouched(max, NewTouched(d.dim), NewTouched(d.dim))
}

// ExtraMTouched is ExtraM with caller-provided scratch: the rows of dropped
// upper bounds and the columns of relaxed lower bounds are collected into
// rows and cols (previous contents discarded), and canonical form is
// restored with CloseRows over just those — O((|rows|+|cols|)·n²) instead of
// the full O(n³) Floyd–Warshall, bit-identical to it by CloseRows'
// loosening argument. The zone must be canonical and nonempty on entry, as
// everywhere in the exploration loop.
func (d *DBM) ExtraMTouched(max []int64, rows, cols *Touched) bool {
	n := d.dim
	rows.Reset()
	cols.Reset()
	mc := func(i int) int64 {
		if i == 0 {
			return 0
		}
		return max[i]
	}
	for i := 0; i < n; i++ {
		ri := d.m[i*n : i*n+n]
		hi := LE(mc(i))
		for j, b := range ri {
			if i == j || b == Infinity {
				continue
			}
			if i != 0 && b > hi {
				// Upper bound on xi (relative to xj) beyond xi's max
				// constant: drop it.
				ri[j] = Infinity
				rows.Add(i)
			} else if lo := LT(-mc(j)); b < lo {
				// Lower bound on xj below -max: relax to the strict bound at
				// the max constant.
				ri[j] = lo
				cols.Add(j)
			}
		}
	}
	if rows.Len() == 0 && cols.Len() == 0 {
		return false
	}
	d.CloseRows(rows, cols)
	return true
}

// ExtraLU applies lower/upper-bound extrapolation (Extra_LU from the same
// paper): upper-bound entries beyond U(x_i) are dropped, and lower bounds
// below -L(x_j) are relaxed to (< -L(x_j)). Because guards that bound a
// clock from below can only test it against L and guards from above against
// U, the abstraction preserves reachability while being coarser than ExtraM
// (which uses max(L,U) on both sides). Canonical form is restored.
//
// As with ExtraM, the upper bound of any clock c with a registered U(c) at
// least as large as the values of interest is preserved exactly, so WCRT
// suprema remain exact under the same horizon discipline. Like ExtraM it
// reports whether any bound changed, re-canonicalizes only then, and has a
// pooled-scratch variant ExtraLUTouched for the hot path.
func (d *DBM) ExtraLU(lower, upper []int64) bool {
	return d.ExtraLUTouched(lower, upper, NewTouched(d.dim), NewTouched(d.dim))
}

// ExtraLUTouched is ExtraLU with caller-provided scratch, restoring
// canonical form incrementally exactly like ExtraMTouched.
func (d *DBM) ExtraLUTouched(lower, upper []int64, rows, cols *Touched) bool {
	n := d.dim
	rows.Reset()
	cols.Reset()
	up := func(i int) int64 {
		if i == 0 {
			return 0
		}
		return upper[i]
	}
	lo := func(j int) int64 {
		if j == 0 {
			return 0
		}
		return lower[j]
	}
	for i := 0; i < n; i++ {
		ri := d.m[i*n : i*n+n]
		hi := LE(up(i))
		for j, b := range ri {
			if i == j || b == Infinity {
				continue
			}
			if i != 0 && b > hi {
				ri[j] = Infinity
				rows.Add(i)
			} else if low := LT(-lo(j)); b < low {
				ri[j] = low
				cols.Add(j)
			}
		}
	}
	if rows.Len() == 0 && cols.Len() == 0 {
		return false
	}
	d.CloseRows(rows, cols)
	return true
}
