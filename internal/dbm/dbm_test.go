package dbm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBoundEncoding(t *testing.T) {
	cases := []struct {
		b     Bound
		value int64
		weak  bool
	}{
		{LE(0), 0, true},
		{LT(0), 0, false},
		{LE(5), 5, true},
		{LT(5), 5, false},
		{LE(-3), -3, true},
		{LT(-3), -3, false},
	}
	for _, c := range cases {
		if c.b.Value() != c.value {
			t.Errorf("%v: Value() = %d, want %d", c.b, c.b.Value(), c.value)
		}
		if c.b.Weak() != c.weak {
			t.Errorf("%v: Weak() = %v, want %v", c.b, c.b.Weak(), c.weak)
		}
	}
}

func TestBoundOrdering(t *testing.T) {
	// (<, c) tighter than (≤, c) tighter than (<, c+1).
	if !(LT(3) < LE(3)) {
		t.Error("LT(3) should be tighter than LE(3)")
	}
	if !(LE(3) < LT(4)) {
		t.Error("LE(3) should be tighter than LT(4)")
	}
	if !(LE(3) < Infinity) {
		t.Error("any finite bound should be tighter than Infinity")
	}
}

func TestBoundAdd(t *testing.T) {
	cases := []struct {
		a, b, want Bound
	}{
		{LE(2), LE(3), LE(5)},
		{LE(2), LT(3), LT(5)},
		{LT(2), LE(3), LT(5)},
		{LT(2), LT(3), LT(5)},
		{LE(-2), LE(3), LE(1)},
		{LE(2), Infinity, Infinity},
		{Infinity, LT(1), Infinity},
	}
	for _, c := range cases {
		if got := Add(c.a, c.b); got != c.want {
			t.Errorf("Add(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestBoundNegate(t *testing.T) {
	if got := Negate(LE(5)); got != LT(-5) {
		t.Errorf("Negate(LE(5)) = %v, want LT(-5)", got)
	}
	if got := Negate(LT(5)); got != LE(-5) {
		t.Errorf("Negate(LT(5)) = %v, want LE(-5)", got)
	}
}

func TestNewIsZeroZone(t *testing.T) {
	d := New(4)
	if d.IsEmpty() {
		t.Fatal("zero zone must be nonempty")
	}
	if !d.Contains([]int64{0, 0, 0, 0}) {
		t.Error("zero zone must contain the origin")
	}
	if d.Contains([]int64{0, 1, 0, 0}) {
		t.Error("zero zone must not contain nonzero valuations")
	}
}

func TestUniverseContainsEverything(t *testing.T) {
	d := Universe(3)
	for _, v := range [][]int64{{0, 0, 0}, {0, 5, 2}, {0, 1000, 0}} {
		if !d.Contains(v) {
			t.Errorf("universe must contain %v", v)
		}
	}
	if d.Contains([]int64{0, -1, 0}) {
		t.Error("universe must not contain negative clock values")
	}
}

func TestUpDelay(t *testing.T) {
	d := New(3)
	d.Up()
	// After delay from the origin both clocks advance together.
	if !d.Contains([]int64{0, 7, 7}) {
		t.Error("delayed zero zone must contain equal-valued points")
	}
	if d.Contains([]int64{0, 7, 6}) {
		t.Error("delayed zero zone must keep clocks equal")
	}
}

func TestResetAfterDelay(t *testing.T) {
	d := New(3)
	d.Up()
	d.Reset(1, 0)
	// Now x1 = 0 and x2 ≥ x1 arbitrary.
	if !d.Contains([]int64{0, 0, 9}) {
		t.Error("reset zone should contain x1=0, x2=9")
	}
	if d.Contains([]int64{0, 1, 9}) {
		t.Error("x1 must be exactly 0 after reset")
	}
	if d.Contains([]int64{0, 0, -1}) {
		t.Error("clocks must stay nonnegative")
	}
}

func TestResetToConstant(t *testing.T) {
	d := New(2)
	d.Up()
	d.Reset(1, 5)
	if got := d.Sup(1); got != LE(5) {
		t.Errorf("Sup after Reset(1,5) = %v, want <=5", got)
	}
	if got := d.Inf(1); got != LE(5) {
		t.Errorf("Inf after Reset(1,5) = %v, want <=5", got)
	}
}

func TestConstrainTightens(t *testing.T) {
	d := New(3)
	d.Up()
	if !d.Constrain(1, 0, LE(10)) {
		t.Fatal("constraining x1<=10 must keep zone nonempty")
	}
	if d.Contains([]int64{0, 11, 11}) {
		t.Error("x1 must be at most 10")
	}
	// Because x1 == x2 here, x2 is also bounded after closure.
	if got := d.Sup(2); got != LE(10) {
		t.Errorf("Sup(x2) = %v, want <=10 via canonicalization", got)
	}
}

func TestConstrainEmpties(t *testing.T) {
	d := New(2)
	d.Up()
	if !d.Constrain(1, 0, LE(5)) {
		t.Fatal("x1<=5 should be satisfiable")
	}
	if d.Constrain(0, 1, LT(-5)) { // x1 > 5
		t.Fatal("x1<=5 and x1>5 must be empty")
	}
	if !d.IsEmpty() {
		t.Error("IsEmpty must report the contradiction")
	}
}

func TestFree(t *testing.T) {
	d := New(3)
	d.Up()
	d.Constrain(1, 0, LE(4))
	d.Free(2)
	if !d.Contains([]int64{0, 4, 1000}) {
		t.Error("freed clock may take any nonnegative value")
	}
	if d.Contains([]int64{0, 5, 0}) {
		t.Error("constraint on x1 must survive freeing x2")
	}
}

func TestCopyClock(t *testing.T) {
	d := New(3)
	d.Up()
	d.Constrain(1, 0, LE(8))
	d.Constrain(0, 1, LE(-8)) // x1 == 8
	d.CopyClock(2, 1)
	if got := d.Sup(2); got != LE(8) {
		t.Errorf("Sup(x2) after copy = %v, want <=8", got)
	}
	if !d.Contains([]int64{0, 8, 8}) {
		t.Error("copied clock must equal source")
	}
}

func TestRelation(t *testing.T) {
	small := New(2)
	small.Up()
	small.Constrain(1, 0, LE(5))
	big := New(2)
	big.Up()
	big.Constrain(1, 0, LE(10))
	if r := small.Rel(big); r != Subset {
		t.Errorf("small.Rel(big) = %v, want Subset", r)
	}
	if r := big.Rel(small); r != Superset {
		t.Errorf("big.Rel(small) = %v, want Superset", r)
	}
	if r := big.Rel(big.Copy()); r != Equal {
		t.Errorf("self relation = %v, want Equal", r)
	}
	other := New(2)
	other.Up()
	other.Constrain(0, 1, LE(-7)) // x1 >= 7
	if r := small.Rel(other); r != Different {
		t.Errorf("disjointish relation = %v, want Different", r)
	}
	if !small.SubsetEq(big) || big.SubsetEq(small) {
		t.Error("SubsetEq disagrees with Rel")
	}
}

func TestIntersect(t *testing.T) {
	a := New(2)
	a.Up()
	a.Constrain(1, 0, LE(10))
	b := New(2)
	b.Up()
	b.Constrain(0, 1, LE(-5)) // x1 >= 5
	if !a.Intersect(b) {
		t.Fatal("intersection [5,10] must be nonempty")
	}
	if a.Sup(1) != LE(10) || a.Inf(1) != LE(5) {
		t.Errorf("intersection bounds = [%v, %v], want [<=5, <=10]", a.Inf(1), a.Sup(1))
	}

	c := New(2)
	c.Up()
	c.Constrain(1, 0, LT(5)) // x1 < 5
	if c.Intersect(b) {
		t.Error("x1<5 ∩ x1>=5 must be empty")
	}
}

func TestDown(t *testing.T) {
	d := New(2)
	d.Up()
	d.Constrain(0, 1, LE(-5)) // x1 >= 5
	d.Constrain(1, 0, LE(10))
	d.Down()
	if !d.Contains([]int64{0, 2}) {
		t.Error("time predecessors of [5,10] must include 2")
	}
	if d.Contains([]int64{0, 11}) {
		t.Error("Down must not add values above the upper bound")
	}
}

func TestExtraMDropsLargeBounds(t *testing.T) {
	d := New(2)
	d.Up()
	d.Constrain(1, 0, LE(100))
	d.Constrain(0, 1, LE(-90)) // 90 <= x1 <= 100
	d.ExtraM([]int64{0, 10})   // max constant of x1 is 10
	if d.Sup(1) != Infinity {
		t.Errorf("upper bound above max must be dropped, got %v", d.Sup(1))
	}
	// The lower bound 90 exceeds the max constant 10 and must relax to >10.
	if got := d.At(0, 1); got != LT(-10) {
		t.Errorf("lower bound must relax to <-10, got %v", got)
	}
}

func TestExtraMKeepsSmallBounds(t *testing.T) {
	d := New(2)
	d.Up()
	d.Constrain(1, 0, LE(7))
	before := d.Copy()
	d.ExtraM([]int64{0, 10})
	if !d.Eq(before) {
		t.Error("bounds within the max constant must be unchanged")
	}
}

func TestExtrapolationReportsChanges(t *testing.T) {
	// No-op case: every bound inside the extrapolation box. The flag must be
	// false and the matrix untouched (this is the fast path that skips the
	// post-extrapolation Floyd–Warshall).
	d := New(2)
	d.Up()
	d.Constrain(1, 0, LE(7))
	if d.ExtraM([]int64{0, 10}) {
		t.Error("ExtraM within the box must report changed=false")
	}
	if d.ExtraLU([]int64{0, 10}, []int64{0, 10}) {
		t.Error("ExtraLU within the box must report changed=false")
	}
	// Abstracting case: bounds beyond the constants must report true.
	e := New(2)
	e.Up()
	e.Constrain(1, 0, LE(100))
	if !e.ExtraM([]int64{0, 10}) {
		t.Error("ExtraM dropping a bound must report changed=true")
	}
	f := New(2)
	f.Up()
	f.Constrain(1, 0, LE(100))
	if !f.ExtraLU([]int64{0, 10}, []int64{0, 10}) {
		t.Error("ExtraLU dropping a bound must report changed=true")
	}
	// Idempotence: re-extrapolating the already-abstracted zone is a no-op.
	if e.ExtraM([]int64{0, 10}) {
		t.Error("ExtraM must be idempotent: second application reports changed=false")
	}
}

func TestTouchedSet(t *testing.T) {
	s := NewTouched(4)
	if s.Len() != 0 {
		t.Fatal("new set must be empty")
	}
	s.Add(2)
	s.Add(0)
	s.Add(2) // duplicate
	if s.Len() != 2 || !s.Has(2) || !s.Has(0) || s.Has(1) {
		t.Fatalf("set contents wrong: %v", s.Clocks())
	}
	if got := s.Clocks(); len(got) != 2 || got[0] != 2 || got[1] != 0 {
		t.Fatalf("insertion order lost: %v", got)
	}
	s.Reset()
	if s.Len() != 0 || s.Has(2) || s.Has(0) {
		t.Fatal("Reset must empty the set")
	}
}

// TestCloseRowsRederivesDroppedBound pins the case that forces CloseRows'
// all-pivot structure: ExtraM drops x1's upper bound (entry (1,0), beyond
// max[1]=3), but the canonical form re-derives it as <=10 from the KEPT
// x1-x2 <= 0 and x2 <= 10 bounds — a path through clock 2, which
// extrapolation never touched. Pivoting only over the touched clocks would
// leave the entry at infinity and the matrix non-canonical, which would
// break the hash-keyed passed stores.
func TestCloseRowsRederivesDroppedBound(t *testing.T) {
	d := New(4)
	d.Up()
	if !d.Constrain(1, 0, LE(10)) {
		t.Fatal("setup zone empty")
	}
	ref := d.Copy()
	max := []int64{0, 3, 15, 15}

	rows, cols := NewTouched(4), NewTouched(4)
	if !d.ExtraMTouched(max, rows, cols) {
		t.Fatal("extrapolation must report a change")
	}
	if !rows.Has(1) {
		t.Error("row 1 must be recorded as touched")
	}
	// Reference: the same loosening scan followed by a full Close.
	refChanged := extraMFullClose(ref, max)
	if !refChanged {
		t.Fatal("reference must also change")
	}
	if !d.Eq(ref) {
		t.Fatalf("incremental ExtraM differs from full close:\n got %s\nwant %s", d, ref)
	}
	if got := d.At(1, 0); got != LE(10) {
		t.Errorf("x1's upper bound must be re-derived as <=10 through untouched clock 2, got %v", got)
	}
}

// extraMFullClose is the pre-incremental reference: loosen per the Extra_M
// rules, then run the full Floyd–Warshall.
func extraMFullClose(d *DBM, max []int64) bool {
	n := d.Dim()
	changed := false
	mc := func(i int) int64 {
		if i == 0 {
			return 0
		}
		return max[i]
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b := d.At(i, j)
			if i == j || b == Infinity {
				continue
			}
			if i != 0 && b > LE(mc(i)) {
				d.set(i, j, Infinity)
				changed = true
			} else if lo := LT(-mc(j)); b < lo {
				d.set(i, j, lo)
				changed = true
			}
		}
	}
	if changed {
		d.Close()
	}
	return changed
}

func TestQuickExtraMTouchedMatchesFullClose(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 3 + r.Intn(4)
		d := randomZone(r, dim)
		max := make([]int64, dim)
		for c := 1; c < dim; c++ {
			max[c] = int64(r.Intn(20)) - 2 // negative means "never compared"
		}
		inc := d.Copy()
		ref := d.Copy()
		rows, cols := NewTouched(dim), NewTouched(dim)
		if inc.ExtraMTouched(max, rows, cols) != extraMFullClose(ref, max) {
			return false
		}
		return inc.Eq(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestQuickCloseTouchedMatchesFullOnTightening(t *testing.T) {
	// Tighten a handful of random entries on a canonical zone, recording both
	// clocks of each; CloseTouched must agree with the full Close on both the
	// emptiness verdict and (when nonempty) every bound.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 3 + r.Intn(4)
		d := randomZone(r, dim)
		inc := d.Copy()
		ref := d.Copy()
		touched := NewTouched(dim)
		for k := 0; k < 1+r.Intn(3); k++ {
			i, j := r.Intn(dim), r.Intn(dim)
			if i == j {
				continue
			}
			b := LE(int64(r.Intn(14) - 2))
			if b < inc.At(i, j) {
				inc.set(i, j, b)
				ref.set(i, j, b)
				touched.Add(i)
				touched.Add(j)
			}
		}
		okInc := inc.CloseTouched(touched)
		okRef := ref.Close()
		if okInc != okRef {
			return false
		}
		return !okRef || inc.Eq(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectTouchedMatchesIntersect(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomZone(r, 4)
		b := randomZone(r, 4)
		inc := a.Copy()
		ref := a.Copy()
		// Reference: entrywise min followed by a full Close.
		refChanged := false
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				if b.At(i, j) < ref.At(i, j) {
					ref.set(i, j, b.At(i, j))
					refChanged = true
				}
			}
		}
		var okRef bool
		if refChanged {
			okRef = ref.Close()
		} else {
			okRef = !ref.IsEmpty()
		}
		okInc := inc.IntersectTouched(b, NewTouched(4))
		if okInc != okRef {
			return false
		}
		return !okRef || inc.Eq(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestTightenDeferredBatch(t *testing.T) {
	// A two-sided guard batched through TightenDeferred+CloseTouched must
	// match sequential Constrain bit for bit.
	d := New(3)
	d.Up()
	seq := d.Copy()
	if !seq.Constrain(1, 0, LE(9)) || !seq.Constrain(0, 1, LE(-4)) {
		t.Fatal("sequential path empty")
	}
	tch := NewTouched(3)
	if !d.TightenDeferred(1, 0, LE(9), tch) || !d.TightenDeferred(0, 1, LE(-4), tch) {
		t.Fatal("deferred path rejected")
	}
	if !d.CloseTouched(tch) {
		t.Fatal("deferred close empty")
	}
	if !d.Eq(seq) {
		t.Fatalf("batched constrain differs:\n got %s\nwant %s", d, seq)
	}
	// Early contradiction: the quick reverse check must fire.
	e := New(3)
	e.Up()
	tch.Reset()
	if !e.TightenDeferred(1, 0, LE(5), tch) {
		t.Fatal("x1<=5 alone cannot empty")
	}
	if e.CloseTouched(tch); e.TightenDeferred(0, 1, LE(-7), tch) {
		t.Error("x1>=7 must contradict x1<=5 via the reverse bound")
	}
}

func TestHashDistinguishes(t *testing.T) {
	a := New(3)
	a.Up()
	b := a.Copy()
	if a.Hash() != b.Hash() {
		t.Error("equal DBMs must hash equally")
	}
	b.Constrain(1, 0, LE(5))
	if a.Hash() == b.Hash() {
		t.Error("different DBMs should hash differently (overwhelmingly)")
	}
}

func TestStringSmoke(t *testing.T) {
	d := New(2)
	if s := d.String(); s == "" {
		t.Error("String must render something")
	}
	if s := LE(3).String(); s != "<=3" {
		t.Errorf("bound string = %q", s)
	}
	if s := Infinity.String(); s != "inf" {
		t.Errorf("infinity string = %q", s)
	}
}

// --- Property-based tests against a concrete-valuation oracle ---

// randomZone builds a random nonempty canonical zone over dim clocks by
// applying a few random delay/reset/constrain steps from the origin,
// mirroring how zones arise during exploration.
func randomZone(r *rand.Rand, dim int) *DBM {
	d := New(dim)
	for step := 0; step < 6; step++ {
		switch r.Intn(4) {
		case 0:
			d.Up()
		case 1:
			d.Reset(1+r.Intn(dim-1), int64(r.Intn(5)))
		case 2:
			c := 1 + r.Intn(dim-1)
			prev := d.Copy()
			if !d.Constrain(c, 0, LE(int64(r.Intn(20)))) {
				d = prev
			}
		case 3:
			c := 1 + r.Intn(dim-1)
			prev := d.Copy()
			if !d.Constrain(0, c, LE(-int64(r.Intn(10)))) {
				d = prev
			}
		}
	}
	return d
}

// sampleValuations returns concrete integer points, some inside typical zone
// ranges, some outside.
func sampleValuations(r *rand.Rand, dim, n int) [][]int64 {
	out := make([][]int64, n)
	for i := range out {
		v := make([]int64, dim)
		for c := 1; c < dim; c++ {
			v[c] = int64(r.Intn(30))
		}
		out[i] = v
	}
	return out
}

func TestQuickCloseIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		d := randomZone(rr, 4)
		c := d.Copy()
		c.Close()
		return d.Eq(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: r}); err != nil {
		t.Error(err)
	}
}

func TestQuickUpSoundness(t *testing.T) {
	// Every point of the zone, delayed by any amount, is in Up(zone); and
	// Up(zone) contains only points reachable by uniform delay of some
	// contained point (checked on integer samples via subtraction).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomZone(r, 3)
		up := d.Copy()
		up.Up()
		for _, v := range sampleValuations(r, 3, 40) {
			if d.Contains(v) {
				w := []int64{0, v[1] + 5, v[2] + 5}
				if !up.Contains(w) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickConstrainSoundness(t *testing.T) {
	// Constrain(zone, x<=k) contains exactly the points of zone with x<=k.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomZone(r, 3)
		k := int64(r.Intn(25))
		con := d.Copy()
		nonEmpty := con.Constrain(1, 0, LE(k))
		for _, v := range sampleValuations(r, 3, 40) {
			want := d.Contains(v) && v[1] <= k
			got := nonEmpty && con.Contains(v)
			if want != got {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickResetSoundness(t *testing.T) {
	// After Reset(c, 0) every contained point has v[c] == 0, and each point of
	// the original zone maps into the reset zone with its c component zeroed.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomZone(r, 3)
		rd := d.Copy()
		rd.Reset(1, 0)
		for _, v := range sampleValuations(r, 3, 40) {
			if d.Contains(v) {
				w := []int64{0, 0, v[2]}
				if !rd.Contains(w) {
					return false
				}
			}
			if rd.Contains(v) && v[1] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickInclusionMatchesOracle(t *testing.T) {
	// If SubsetEq holds, every sampled point of the subset is in the superset.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomZone(r, 3)
		b := randomZone(r, 3)
		if a.SubsetEq(b) {
			for _, v := range sampleValuations(r, 3, 60) {
				if a.Contains(v) && !b.Contains(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickExtraMPreservesSmallPoints(t *testing.T) {
	// Extrapolation only grows the zone, and within the max-constant box the
	// zone is unchanged.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomZone(r, 3)
		max := []int64{0, 15, 15}
		e := d.Copy()
		e.ExtraM(max)
		if !d.SubsetEq(e) {
			return false
		}
		for _, v := range sampleValuations(r, 3, 40) {
			inBox := v[1] <= max[1] && v[2] <= max[2]
			if inBox && d.Contains(v) != e.Contains(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectionOracle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomZone(r, 3)
		b := randomZone(r, 3)
		inter := a.Copy()
		ok := inter.Intersect(b)
		for _, v := range sampleValuations(r, 3, 40) {
			want := a.Contains(v) && b.Contains(v)
			got := ok && inter.Contains(v)
			if want != got {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// benchExtraSetup builds zones and max constants shaped like the exploration
// steady state: 10 clocks, most inside the extrapolation box, two (the
// long-running environment clocks) beyond it — so extrapolation loosens a
// couple of rows and the incremental closure has few touched rows to re-run.
func benchExtraSetup(r *rand.Rand) ([]*DBM, []int64) {
	zones := make([]*DBM, 64)
	for i := range zones {
		zones[i] = randomZone(r, 10)
	}
	max := make([]int64, 10)
	for c := 1; c < 10; c++ {
		max[c] = 100
	}
	max[1], max[2] = 2, 3
	return zones, max
}

func BenchmarkExtraMFullClose(b *testing.B) {
	zones, max := benchExtraSetup(rand.New(rand.NewSource(7)))
	scratch := New(10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch.CopyFrom(zones[i%len(zones)])
		extraMFullClose(scratch, max)
	}
}

func BenchmarkExtraMIncremental(b *testing.B) {
	zones, max := benchExtraSetup(rand.New(rand.NewSource(7)))
	scratch := New(10)
	rows, cols := NewTouched(10), NewTouched(10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch.CopyFrom(zones[i%len(zones)])
		scratch.ExtraMTouched(max, rows, cols)
	}
}

func BenchmarkClose(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	zones := make([]*DBM, 64)
	for i := range zones {
		zones[i] = randomZone(r, 10)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z := zones[i%len(zones)].Copy()
		z.Close()
	}
}

func BenchmarkConstrain(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	base := randomZone(r, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z := base.Copy()
		z.Constrain(3, 0, LE(int64(i%50)))
	}
}

func TestQuickUpIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomZone(r, 4)
		once := d.Copy()
		once.Up()
		twice := once.Copy()
		twice.Up()
		return once.Eq(twice)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickFreeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomZone(r, 4)
		once := d.Copy()
		once.Free(2)
		twice := once.Copy()
		twice.Free(2)
		return once.Eq(twice)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickResetOverridesReset(t *testing.T) {
	// Resetting twice equals resetting once with the latter value.
	f := func(seed int64, a8, b8 uint8) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomZone(r, 3)
		va, vb := int64(a8%20), int64(b8%20)
		d1 := d.Copy()
		d1.Reset(1, va)
		d1.Reset(1, vb)
		d2 := d.Copy()
		d2.Reset(1, vb)
		return d1.Eq(d2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickDownContainsOriginal(t *testing.T) {
	// Time predecessors always include the zone itself.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomZone(r, 3)
		down := d.Copy()
		down.Down()
		return d.SubsetEq(down)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickCopyClockOracle(t *testing.T) {
	// After CopyClock(2,1), contained points have equal components, and
	// points of the original zone map in with component 2 := component 1.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomZone(r, 3)
		cc := d.Copy()
		cc.CopyClock(2, 1)
		for _, v := range sampleValuations(r, 3, 40) {
			if d.Contains(v) && !cc.Contains([]int64{0, v[1], v[1]}) {
				return false
			}
			if cc.Contains(v) && v[1] != v[2] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickExtraLUCoarserThanExtraM(t *testing.T) {
	// With U split below M, Extra_LU must include everything Extra_M keeps.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomZone(r, 3)
		m := d.Copy()
		m.ExtraM([]int64{0, 12, 12})
		lu := d.Copy()
		lu.ExtraLU([]int64{0, 12, 3}, []int64{0, 3, 12})
		return m.SubsetEq(lu) || m.Eq(lu)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
