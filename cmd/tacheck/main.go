// Command tacheck is a standalone zone-based model checker for networks of
// timed automata in this repository's textual format (see internal/ta.Parse).
//
// Usage:
//
//	tacheck -model m.ta -reach "PROC.loc && v==2"     reachability + witness
//	tacheck -model m.ta -safety "v<=4"                AG check + counterexample
//	tacheck -model m.ta -sup "y @ OBS.seen"           clock supremum (WCRT)
//	tacheck -model m.ta -deadlock                     deadlock freedom
//	tacheck -model m.ta -dot                          Graphviz export
//
// The query flags combine: any subset of -reach, -safety, -sup, -deadlock
// given together attaches all of them to ONE exploration of the zone graph
// (core.RunQueries) — each query completes independently and the sweep stops
// once every answer is known, so k questions cost one sweep instead of k.
//
// -json emits the machine-readable result instead of the text report: the
// exact wire format (internal/wire.TAResponse) the taserved analysis service
// returns for the same model and queries, so scripted callers can switch
// between the CLI and the service without re-parsing anything.
//
// Options: -order bfs|df|rdf, -seed, -max-states, -max-const (extrapolation
// horizon for the sup clock), -workers (parallel exploration; defaults to
// the number of CPUs and applies to every query, counterexample and witness
// traces included). -cpuprofile/-memprofile write runtime/pprof profiles of
// the run for hot-path inspection; -profile-out captures the engine's sweep
// profile (parse/compile/explore phase spans + per-worker series) as JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/profflag"
	"repro/internal/ta"
	"repro/internal/wire"
)

func main() {
	prof := profflag.Register()
	var (
		modelPath   = flag.String("model", "", "path to the .ta model")
		reach       = flag.String("reach", "", "reachability predicate")
		safety      = flag.String("safety", "", "invariant predicate (AG)")
		sup         = flag.String("sup", "", "clock supremum query: \"clock @ predicate\"")
		deadlock    = flag.Bool("deadlock", false, "check deadlock freedom")
		dot         = flag.Bool("dot", false, "print the network as Graphviz DOT")
		uppaal      = flag.Bool("uppaal", false, "print the network as UPPAAL 4.x XML")
		jsonOut     = flag.Bool("json", false, "emit the result as JSON (the taserved wire format)")
		order       = flag.String("order", "bfs", "search order: bfs, df, rdf")
		seed        = flag.Int64("seed", 1, "seed for rdf search")
		maxStates   = flag.Int("max-states", 0, "soft state cap: exploration truncates past it, 0 = exhaustive")
		stateBudget = flag.Int("state-budget", 0, "hard state budget: exceeding it fails the run (0 = unbounded)")
		maxBytes    = flag.Int64("max-bytes", 0, "zone-memory budget in bytes: exceeding it fails the run (0 = unbounded)")
		maxConst    = flag.Int64("max-const", 0, "extrapolation horizon for the sup clock")
		workers     = flag.Int("workers", runtime.NumCPU(), "parallel exploration workers (1 = sequential)")
	)
	flag.Parse()
	if *modelPath == "" {
		fmt.Fprintln(os.Stderr, "tacheck: -model is required")
		flag.Usage()
		os.Exit(2)
	}
	stopProf, err := prof.Start()
	if err != nil {
		fatal(err)
	}
	defer stopProf()
	data, err := os.ReadFile(*modelPath)
	if err != nil {
		fatal(err)
	}

	var opts core.Options
	switch *order {
	case "bfs":
		opts.Order = core.BFS
	case "df":
		opts.Order = core.DFS
	case "rdf":
		opts.Order = core.RDFS
	default:
		fatal(fmt.Errorf("unknown order %q", *order))
	}
	opts.Seed = *seed
	opts.MaxStates = *maxStates
	opts.StateBudget = *stateBudget
	opts.MaxBytes = *maxBytes
	// Routing between the sequential and parallel frontier happens inside
	// core (Options.parallelism): every query kind honors Workers, and
	// parallel runs reconstruct traces from per-worker parent logs.
	opts.Workers = *workers

	if *dot || *uppaal {
		net, err := ta.Parse(string(data))
		if err != nil {
			fatal(err)
		}
		if *dot {
			fmt.Print(net.DOT())
		} else {
			fmt.Print(net.UPPAALXML())
		}
		return
	}

	// Collect every requested query as a wire spec — the identical path the
	// taserved service takes, so CLI answers and service answers are built
	// and encoded by the same code (internal/wire.TARun).
	var specs []wire.TAQuery
	if *reach != "" {
		specs = append(specs, wire.TAQuery{Kind: "reach", Pred: *reach})
	}
	if *safety != "" {
		specs = append(specs, wire.TAQuery{Kind: "safety", Pred: *safety})
	}
	if *sup != "" {
		clock, pred, ok := strings.Cut(*sup, "@")
		if !ok {
			fatal(fmt.Errorf("sup query must be \"clock @ predicate\""))
		}
		specs = append(specs, wire.TAQuery{
			Kind:  "sup",
			Clock: strings.TrimSpace(clock),
			Pred:  strings.TrimSpace(pred),
		})
	}
	if *deadlock {
		specs = append(specs, wire.TAQuery{Kind: "deadlock"})
	}
	if len(specs) == 0 {
		fmt.Fprintln(os.Stderr, "tacheck: one of -reach, -safety, -sup, -deadlock, -dot is required")
		flag.Usage()
		os.Exit(2)
	}

	mon := prof.Monitor()
	opts.Monitor = mon

	// ParseTAModel registers the -max-const horizon on the sup clocks before
	// the network finalizes; every query then runs against the same network
	// in ONE exploration.
	parseStart := time.Now()
	net, err := wire.ParseTAModel(string(data), specs, *maxConst)
	if err != nil {
		fatal(err)
	}
	if mon != nil {
		mon.RecordPhase("parse", parseStart, time.Now())
	}
	compileStart := time.Now()
	run, err := wire.NewTARun(net, specs)
	if err != nil {
		fatal(err)
	}
	checker, err := core.NewChecker(net)
	if err != nil {
		fatal(err)
	}
	if mon != nil {
		mon.RecordPhase("compile", compileStart, time.Now())
	}
	stats, err := checker.RunQueries(opts, run.Queries()...)
	if err != nil {
		fatal(err)
	}
	resp := run.Response(stats)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(resp); err != nil {
			fatal(err)
		}
		return
	}
	for _, q := range resp.Queries {
		switch q.Kind {
		case "reach":
			fmt.Printf("reachable(%s) = %v   [%s]\n", q.Pred, q.Verdict, stats)
			fmt.Print(q.Trace)
		case "safety":
			fmt.Printf("AG(%s) = %v   [%s]\n", q.Pred, q.Verdict, stats)
			fmt.Print(q.Trace)
		case "sup":
			switch {
			case !q.Verdict:
				fmt.Printf("sup %s @ %s: predicate unreachable   [%s]\n", q.Clock, q.Pred, stats)
			case q.SupUnbounded:
				fmt.Printf("sup %s @ %s: beyond extrapolation horizon (raise -max-const)   [%s]\n", q.Clock, q.Pred, stats)
			default:
				fmt.Printf("sup %s @ %s = %s   [%s]\n", q.Clock, q.Pred, q.Sup, stats)
			}
		case "deadlock":
			fmt.Printf("deadlock-free = %v   [%s]\n", q.Verdict, stats)
			fmt.Print(q.Trace)
		}
	}
}

func fatal(err error) {
	// Budget and abort failures carry the same named code here as in
	// taserved's wire responses, so scripts can match one taxonomy.
	if code := wire.CodeForError(err); code != "" {
		fmt.Fprintf(os.Stderr, "tacheck: %s: %v\n", code, err)
	} else {
		fmt.Fprintln(os.Stderr, "tacheck:", err)
	}
	os.Exit(1)
}
