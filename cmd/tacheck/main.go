// Command tacheck is a standalone zone-based model checker for networks of
// timed automata in this repository's textual format (see internal/ta.Parse).
//
// Usage:
//
//	tacheck -model m.ta -reach "PROC.loc && v==2"     reachability + witness
//	tacheck -model m.ta -safety "v<=4"                AG check + counterexample
//	tacheck -model m.ta -sup "y @ OBS.seen"           clock supremum (WCRT)
//	tacheck -model m.ta -deadlock                     deadlock freedom
//	tacheck -model m.ta -dot                          Graphviz export
//
// Options: -order bfs|df|rdf, -seed, -max-states, -max-const (extrapolation
// horizon for the sup clock), -workers (parallel exploration; defaults to
// the number of CPUs and applies to every query, counterexample and witness
// traces included).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/core"
	"repro/internal/ta"
)

func main() {
	var (
		modelPath = flag.String("model", "", "path to the .ta model")
		reach     = flag.String("reach", "", "reachability predicate")
		safety    = flag.String("safety", "", "invariant predicate (AG)")
		sup       = flag.String("sup", "", "clock supremum query: \"clock @ predicate\"")
		deadlock  = flag.Bool("deadlock", false, "check deadlock freedom")
		dot       = flag.Bool("dot", false, "print the network as Graphviz DOT")
		uppaal    = flag.Bool("uppaal", false, "print the network as UPPAAL 4.x XML")
		order     = flag.String("order", "bfs", "search order: bfs, df, rdf")
		seed      = flag.Int64("seed", 1, "seed for rdf search")
		maxStates = flag.Int("max-states", 0, "state budget, 0 = exhaustive")
		maxConst  = flag.Int64("max-const", 0, "extrapolation horizon for the sup clock")
		workers   = flag.Int("workers", runtime.NumCPU(), "parallel exploration workers (1 = sequential)")
	)
	flag.Parse()
	if *modelPath == "" {
		fmt.Fprintln(os.Stderr, "tacheck: -model is required")
		flag.Usage()
		os.Exit(2)
	}
	data, err := os.ReadFile(*modelPath)
	if err != nil {
		fatal(err)
	}

	var opts core.Options
	switch *order {
	case "bfs":
		opts.Order = core.BFS
	case "df":
		opts.Order = core.DFS
	case "rdf":
		opts.Order = core.RDFS
	default:
		fatal(fmt.Errorf("unknown order %q", *order))
	}
	opts.Seed = *seed
	opts.MaxStates = *maxStates
	// Routing between the sequential and parallel frontier happens inside
	// core (Options.parallelism): every query kind honors Workers, and
	// parallel runs reconstruct traces from per-worker parent logs.
	opts.Workers = *workers

	parseNet := func() *ta.Network {
		net, err := ta.Parse(string(data))
		if err != nil {
			fatal(err)
		}
		return net
	}

	switch {
	case *dot:
		fmt.Print(parseNet().DOT())

	case *uppaal:
		fmt.Print(parseNet().UPPAALXML())

	case *reach != "":
		net := parseNet()
		checker := mustChecker(net)
		pred, err := core.ParsePredicate(net, *reach)
		if err != nil {
			fatal(err)
		}
		found, trace, stats, err := checker.Reachable(pred, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("reachable(%s) = %v   [%s]\n", *reach, found, stats)
		if found {
			fmt.Print(core.FormatTrace(net, trace))
		}

	case *safety != "":
		net := parseNet()
		checker := mustChecker(net)
		pred, err := core.ParsePredicate(net, *safety)
		if err != nil {
			fatal(err)
		}
		res, err := checker.CheckSafety(core.Property{Desc: *safety, Holds: pred}, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("AG(%s) = %v   [%s]\n", *safety, res.Holds, res.Stats)
		if !res.Holds {
			fmt.Print(core.FormatTrace(net, res.Counterexample))
		}

	case *sup != "":
		clockName, predStr, found := strings.Cut(*sup, "@")
		if !found {
			fatal(fmt.Errorf("sup query must be \"clock @ predicate\""))
		}
		// The extrapolation horizon must be registered before Finalize, so
		// re-parse with the constant injected.
		net, err := ta.Parse(string(data))
		if err != nil {
			fatal(err)
		}
		clock, err := core.FindClock(net, strings.TrimSpace(clockName))
		if err != nil {
			fatal(err)
		}
		if *maxConst > 0 {
			// Parse unfinalized? ta.Parse finalizes; EnsureMaxConst must
			// precede it. Rebuild via the pre-registration hook below.
			net, clock, err = reparseWithHorizon(string(data), strings.TrimSpace(clockName), *maxConst)
			if err != nil {
				fatal(err)
			}
		}
		checker := mustChecker(net)
		pred, err := core.ParsePredicate(net, strings.TrimSpace(predStr))
		if err != nil {
			fatal(err)
		}
		res, err := checker.SupClock(clock.ID, pred, opts)
		if err != nil {
			fatal(err)
		}
		switch {
		case !res.Seen:
			fmt.Printf("sup %s: predicate unreachable   [%s]\n", *sup, res.Stats)
		case res.Unbounded:
			fmt.Printf("sup %s: beyond extrapolation horizon (raise -max-const)   [%s]\n", *sup, res.Stats)
		default:
			fmt.Printf("sup %s = %v   [%s]\n", *sup, res.Max, res.Stats)
		}

	case *deadlock:
		net := parseNet()
		checker := mustChecker(net)
		res, err := checker.CheckDeadlockFree(opts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("deadlock-free = %v   [%s]\n", res.Free, res.Stats)
		if !res.Free {
			fmt.Print(core.FormatTrace(net, res.Witness))
		}

	default:
		fmt.Fprintln(os.Stderr, "tacheck: one of -reach, -safety, -sup, -deadlock, -dot is required")
		flag.Usage()
		os.Exit(2)
	}
}

// reparseWithHorizon re-parses the model and registers the extrapolation
// horizon on the named clock before finalization.
func reparseWithHorizon(input, clockName string, horizon int64) (*ta.Network, ta.Clock, error) {
	net, err := ta.ParseWithHook(input, func(n *ta.Network) error {
		for _, c := range n.Clocks {
			if c.Name == clockName {
				n.EnsureMaxConst(c.ID, horizon)
				return nil
			}
		}
		return fmt.Errorf("unknown clock %q", clockName)
	})
	if err != nil {
		return nil, ta.Clock{}, err
	}
	clock, err := core.FindClock(net, clockName)
	return net, clock, err
}

func mustChecker(net *ta.Network) *core.Checker {
	c, err := core.NewChecker(net)
	if err != nil {
		fatal(err)
	}
	return c
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tacheck:", err)
	os.Exit(1)
}
