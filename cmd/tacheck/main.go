// Command tacheck is a standalone zone-based model checker for networks of
// timed automata in this repository's textual format (see internal/ta.Parse).
//
// Usage:
//
//	tacheck -model m.ta -reach "PROC.loc && v==2"     reachability + witness
//	tacheck -model m.ta -safety "v<=4"                AG check + counterexample
//	tacheck -model m.ta -sup "y @ OBS.seen"           clock supremum (WCRT)
//	tacheck -model m.ta -deadlock                     deadlock freedom
//	tacheck -model m.ta -dot                          Graphviz export
//
// The query flags combine: any subset of -reach, -safety, -sup, -deadlock
// given together attaches all of them to ONE exploration of the zone graph
// (core.RunQueries) — each query completes independently and the sweep stops
// once every answer is known, so k questions cost one sweep instead of k.
//
// Options: -order bfs|df|rdf, -seed, -max-states, -max-const (extrapolation
// horizon for the sup clock), -workers (parallel exploration; defaults to
// the number of CPUs and applies to every query, counterexample and witness
// traces included).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/core"
	"repro/internal/ta"
)

func main() {
	var (
		modelPath = flag.String("model", "", "path to the .ta model")
		reach     = flag.String("reach", "", "reachability predicate")
		safety    = flag.String("safety", "", "invariant predicate (AG)")
		sup       = flag.String("sup", "", "clock supremum query: \"clock @ predicate\"")
		deadlock  = flag.Bool("deadlock", false, "check deadlock freedom")
		dot       = flag.Bool("dot", false, "print the network as Graphviz DOT")
		uppaal    = flag.Bool("uppaal", false, "print the network as UPPAAL 4.x XML")
		order     = flag.String("order", "bfs", "search order: bfs, df, rdf")
		seed      = flag.Int64("seed", 1, "seed for rdf search")
		maxStates = flag.Int("max-states", 0, "state budget, 0 = exhaustive")
		maxConst  = flag.Int64("max-const", 0, "extrapolation horizon for the sup clock")
		workers   = flag.Int("workers", runtime.NumCPU(), "parallel exploration workers (1 = sequential)")
	)
	flag.Parse()
	if *modelPath == "" {
		fmt.Fprintln(os.Stderr, "tacheck: -model is required")
		flag.Usage()
		os.Exit(2)
	}
	data, err := os.ReadFile(*modelPath)
	if err != nil {
		fatal(err)
	}

	var opts core.Options
	switch *order {
	case "bfs":
		opts.Order = core.BFS
	case "df":
		opts.Order = core.DFS
	case "rdf":
		opts.Order = core.RDFS
	default:
		fatal(fmt.Errorf("unknown order %q", *order))
	}
	opts.Seed = *seed
	opts.MaxStates = *maxStates
	// Routing between the sequential and parallel frontier happens inside
	// core (Options.parallelism): every query kind honors Workers, and
	// parallel runs reconstruct traces from per-worker parent logs.
	opts.Workers = *workers

	parseNet := func() *ta.Network {
		net, err := ta.Parse(string(data))
		if err != nil {
			fatal(err)
		}
		return net
	}

	if *dot {
		fmt.Print(parseNet().DOT())
		return
	}
	if *uppaal {
		fmt.Print(parseNet().UPPAALXML())
		return
	}

	// Resolve the network once. The extrapolation horizon of a -sup query
	// must be registered before Finalize, so that case re-parses with the
	// constant injected; every requested query then runs against the same
	// network in ONE exploration.
	var (
		net      *ta.Network
		supClock ta.Clock
	)
	supClockName, supPredStr := "", ""
	if *sup != "" {
		var cut bool
		supClockName, supPredStr, cut = strings.Cut(*sup, "@")
		if !cut {
			fatal(fmt.Errorf("sup query must be \"clock @ predicate\""))
		}
		supClockName = strings.TrimSpace(supClockName)
		supPredStr = strings.TrimSpace(supPredStr)
	}
	if *sup != "" && *maxConst > 0 {
		net, supClock, err = reparseWithHorizon(string(data), supClockName, *maxConst)
		if err != nil {
			fatal(err)
		}
	} else {
		net = parseNet()
		if *sup != "" {
			if supClock, err = core.FindClock(net, supClockName); err != nil {
				fatal(err)
			}
		}
	}

	// Attach every requested query to one query set; report in flag order.
	var queries []core.Query
	var report []func()
	if *reach != "" {
		pred, err := core.ParsePredicate(net, *reach)
		if err != nil {
			fatal(err)
		}
		q := core.NewReachQuery(pred)
		queries = append(queries, q)
		report = append(report, func() {
			fmt.Printf("reachable(%s) = %v   [%s]\n", *reach, q.Found, q.Stats)
			if q.Found {
				fmt.Print(core.FormatTrace(net, q.Trace))
			}
		})
	}
	if *safety != "" {
		pred, err := core.ParsePredicate(net, *safety)
		if err != nil {
			fatal(err)
		}
		// AG(pred) as a query: reach its negation; the witness is the
		// counterexample.
		q := core.NewReachQuery(func(s *core.State) bool { return !pred(s) })
		queries = append(queries, q)
		report = append(report, func() {
			fmt.Printf("AG(%s) = %v   [%s]\n", *safety, !q.Found, q.Stats)
			if q.Found {
				fmt.Print(core.FormatTrace(net, q.Trace))
			}
		})
	}
	if *sup != "" {
		pred, err := core.ParsePredicate(net, supPredStr)
		if err != nil {
			fatal(err)
		}
		q := core.NewSupClockQuery(supClock.ID, pred)
		queries = append(queries, q)
		report = append(report, func() {
			res := q.Result
			switch {
			case !res.Seen:
				fmt.Printf("sup %s: predicate unreachable   [%s]\n", *sup, res.Stats)
			case res.Unbounded:
				fmt.Printf("sup %s: beyond extrapolation horizon (raise -max-const)   [%s]\n", *sup, res.Stats)
			default:
				fmt.Printf("sup %s = %v   [%s]\n", *sup, res.Max, res.Stats)
			}
		})
	}
	if *deadlock {
		q := core.NewDeadlockQuery()
		queries = append(queries, q)
		report = append(report, func() {
			fmt.Printf("deadlock-free = %v   [%s]\n", q.Result.Free, q.Result.Stats)
			if !q.Result.Free {
				fmt.Print(core.FormatTrace(net, q.Result.Witness))
			}
		})
	}
	if len(queries) == 0 {
		fmt.Fprintln(os.Stderr, "tacheck: one of -reach, -safety, -sup, -deadlock, -dot is required")
		flag.Usage()
		os.Exit(2)
	}
	if _, err := mustChecker(net).RunQueries(opts, queries...); err != nil {
		fatal(err)
	}
	for _, r := range report {
		r()
	}
}

// reparseWithHorizon re-parses the model and registers the extrapolation
// horizon on the named clock before finalization.
func reparseWithHorizon(input, clockName string, horizon int64) (*ta.Network, ta.Clock, error) {
	net, err := ta.ParseWithHook(input, func(n *ta.Network) error {
		for _, c := range n.Clocks {
			if c.Name == clockName {
				n.EnsureMaxConst(c.ID, horizon)
				return nil
			}
		}
		return fmt.Errorf("unknown clock %q", clockName)
	})
	if err != nil {
		return nil, ta.Clock{}, err
	}
	clock, err := core.FindClock(net, clockName)
	return net, clock, err
}

func mustChecker(net *ta.Network) *core.Checker {
	c, err := core.NewChecker(net)
	if err != nil {
		fatal(err)
	}
	return c
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tacheck:", err)
	os.Exit(1)
}
