// Command archcheck analyzes a JSON architecture description with any of the
// four engines of this repository: the exact zone-based model checker
// (default), the discrete-event simulator, busy-window analysis, and
// real-time calculus.
//
// Usage:
//
//	archcheck -model system.json [-req name] [-engine uppaal|sim|symta|rtc]
//	          [-horizon ms] [-order bfs|df|rdf] [-max-states n] [-seed n]
//	          [-sim-reps n] [-sim-horizon ms] [-workers n] [-deadlock] [-all]
//
// With no -req, every requirement in the file is analyzed. When several
// requirements are analyzed with the uppaal engine, -all (the default)
// compiles them into ONE network — one measuring observer each — and answers
// every WCRT from a single exploration (arch.AnalyzeAll); -all=false forces
// the historical one-exploration-per-requirement behavior. -workers defaults
// to the number of CPUs; parallel runs return the same verdicts and bounds
// as sequential ones and reconstruct replay-valid traces (which run a trace
// documents may differ between schedules). -deadlock checks the compiled
// system for reachable deadlocked configurations instead of computing WCRTs.
//
// -json emits the machine-readable result instead of the text report: the
// exact wire format (internal/wire.ArchResponse) the taserved analysis
// service returns for the same model, so scripted callers can switch between
// the CLI and the service without re-parsing anything. It applies to the
// uppaal WCRT analysis (the batch path, any number of requirements).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/profflag"
	"repro/internal/rtc"
	"repro/internal/sim"
	"repro/internal/symta"
	"repro/internal/wire"
)

func main() {
	prof := profflag.Register()
	var (
		modelPath   = flag.String("model", "", "path to the JSON system description")
		reqName     = flag.String("req", "", "requirement to analyze (default: all)")
		engine      = flag.String("engine", "uppaal", "analysis engine: uppaal, sim, symta, rtc")
		horizon     = flag.Int64("horizon", 2000, "observation horizon in ms (uppaal engine)")
		order       = flag.String("order", "bfs", "search order: bfs, df, rdf (uppaal engine)")
		maxStates   = flag.Int("max-states", 0, "soft state cap: exploration truncates past it, 0 = exhaustive (uppaal engine)")
		stateBudget = flag.Int("state-budget", 0, "hard state budget: exceeding it fails the run, 0 = unbounded (uppaal engine)")
		maxBytes    = flag.Int64("max-bytes", 0, "zone-memory budget in bytes: exceeding it fails the run, 0 = unbounded (uppaal engine)")
		seed        = flag.Int64("seed", 1, "random seed (rdf order, sim engine)")
		simReps     = flag.Int("sim-reps", 20, "simulation replications (sim engine)")
		simHorizon  = flag.Int64("sim-horizon", 60000, "simulated ms per replication (sim engine)")
		dot         = flag.Bool("dot", false, "print the compiled timed-automata network as Graphviz DOT and exit")
		uppaal      = flag.Bool("uppaal", false, "print the compiled network as UPPAAL 4.x XML and exit")
		deploy      = flag.Bool("deploy", false, "print the deployment diagram (Figure 1 style) as Graphviz DOT and exit")
		workers     = flag.Int("workers", runtime.NumCPU(), "parallel exploration workers, 1 = sequential (uppaal engine)")
		deadlock    = flag.Bool("deadlock", false, "check the compiled system for deadlocks instead of computing WCRTs")
		all         = flag.Bool("all", true, "answer all requirements from one compiled network and one exploration (uppaal engine)")
		jsonOut     = flag.Bool("json", false, "emit the result as JSON (the taserved wire format; uppaal WCRT analysis only)")
	)
	flag.Parse()
	if *modelPath == "" {
		fmt.Fprintln(os.Stderr, "archcheck: -model is required")
		flag.Usage()
		os.Exit(2)
	}
	stopProf, err := prof.Start()
	if err != nil {
		fatal(err)
	}
	defer stopProf()
	data, err := os.ReadFile(*modelPath)
	if err != nil {
		fatal(err)
	}
	mon := prof.Monitor()
	parseStart := time.Now()
	sys, reqs, err := arch.ParseSystem(data)
	if err != nil {
		fatal(err)
	}
	if mon != nil {
		mon.RecordPhase("parse", parseStart, time.Now())
	}
	if *reqName != "" {
		var filtered []*arch.Requirement
		for _, r := range reqs {
			if r.Name == *reqName {
				filtered = append(filtered, r)
			}
		}
		if len(filtered) == 0 {
			fatal(fmt.Errorf("requirement %q not found in %s", *reqName, *modelPath))
		}
		reqs = filtered
	}
	if len(reqs) == 0 {
		fatal(fmt.Errorf("no requirements in %s", *modelPath))
	}

	if *deploy {
		fmt.Print(sys.DOT())
		return
	}
	if *dot || *uppaal {
		compiled, err := arch.Compile(sys, reqs[0], arch.Options{HorizonMS: *horizon})
		if err != nil {
			fatal(err)
		}
		if *dot {
			fmt.Print(compiled.Net.DOT())
		} else {
			fmt.Print(compiled.Net.UPPAALXML())
		}
		return
	}

	var ord core.Order
	switch *order {
	case "bfs":
		ord = core.BFS
	case "df":
		ord = core.DFS
	case "rdf":
		ord = core.RDFS
	default:
		fatal(fmt.Errorf("unknown order %q", *order))
	}
	// The sweep profile (when -profile-out is given) rides the uppaal
	// engine's core options; compile time shows up inside the engine calls,
	// the exploration itself records the explore/trace-replay phases.
	copts := core.Options{Order: ord, Seed: *seed, MaxStates: *maxStates,
		StateBudget: *stateBudget, MaxBytes: *maxBytes, Workers: *workers,
		Monitor: mon}

	if *jsonOut {
		if *engine != "uppaal" || *deadlock {
			fatal(fmt.Errorf("-json supports the uppaal WCRT analysis only"))
		}
		// The batch path answers any number of requirements (one included)
		// from one exploration and is exactly what taserved runs, so the
		// emitted bytes match a service result for the same submission.
		res, err := arch.AnalyzeAll(sys, reqs, arch.Options{HorizonMS: *horizon}, copts)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(wire.FromAllResult(res)); err != nil {
			fatal(err)
		}
		return
	}

	if *deadlock {
		// Deadlock freedom is a property of the whole compiled system; the
		// first requirement only selects the observer compiled alongside it.
		res, err := arch.CheckDeadlockFree(sys, reqs[0], arch.Options{HorizonMS: *horizon}, copts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("deadlock-free = %v   [%s]\n", res.Free, res.Stats)
		if !res.Free {
			fmt.Print(res.Trace)
			os.Exit(1)
		}
		return
	}

	switch *engine {
	case "uppaal":
		if *all && len(reqs) > 1 {
			res, err := arch.AnalyzeAll(sys, reqs, arch.Options{HorizonMS: *horizon}, copts)
			if err != nil {
				fatal(err)
			}
			for i, req := range reqs {
				r := res.Results[i]
				kind := "exact WCRT"
				if !r.Exact {
					kind = "lower bound"
				}
				fmt.Printf("%-20s %s = %s ms\n", req.Name, kind, r.MS.FloatString(3))
			}
			fmt.Printf("(%d requirements from one exploration: %s)\n", len(reqs), res.Stats)
			return
		}
		for _, req := range reqs {
			res, err := arch.AnalyzeWCRT(sys, req,
				arch.Options{HorizonMS: *horizon}, copts)
			if err != nil {
				fatal(err)
			}
			kind := "exact WCRT"
			if !res.Exact {
				kind = "lower bound"
			}
			fmt.Printf("%-20s %s = %s ms   [%s]\n", req.Name, kind, res.MS.FloatString(3), res.Stats)
		}
	case "sim":
		results, err := sim.Simulate(sys, reqs, sim.Options{
			Seed: *seed, HorizonMS: *simHorizon, Replications: *simReps})
		if err != nil {
			fatal(err)
		}
		for _, req := range reqs {
			r := results[req.Name]
			fmt.Printf("%-20s observed max = %s ms, mean = %s ms (n=%d)\n",
				req.Name, r.MaxMS.FloatString(3), r.MeanMS.FloatString(3), r.Completed)
		}
	case "symta":
		results, err := symta.Analyze(sys, reqs)
		if err != nil {
			fatal(err)
		}
		for _, req := range reqs {
			fmt.Printf("%-20s busy-window bound = %s ms\n",
				req.Name, results[req.Name].MS.FloatString(3))
		}
	case "rtc":
		results, err := rtc.Analyze(sys, reqs)
		if err != nil {
			fatal(err)
		}
		for _, req := range reqs {
			fmt.Printf("%-20s real-time-calculus bound = %s ms\n",
				req.Name, results[req.Name].MS.FloatString(3))
		}
	default:
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}
}

func fatal(err error) {
	// Budget and abort failures carry the same named code here as in
	// taserved's wire responses, so scripts can match one taxonomy.
	if code := wire.CodeForError(err); code != "" {
		fmt.Fprintf(os.Stderr, "archcheck: %s: %v\n", code, err)
	} else {
		fmt.Fprintln(os.Stderr, "archcheck:", err)
	}
	os.Exit(1)
}
