// Command icrns regenerates the paper's evaluation tables on the in-car
// radio navigation case study.
//
// Usage:
//
//	icrns -table 1 [-budget n] [-fallback n] [-config default|realistic-bus]
//	icrns -table 2 [-budget n] [-sim-reps n] [-sim-horizon ms]
//	icrns -cell "<requirement>,<column>"   (single Table 1 cell, e.g. "K2A,po")
//
// Table 1 is the worst-case response time of five requirements under five
// event models; Table 2 compares the model checker against the simulation,
// busy-window, and real-time-calculus engines. Table 1 rows are grouped by
// application combination and answered through the batch engine
// (arch.AnalyzeAll): each (combination, column) group is ONE compiled
// network with one measuring observer per requirement and ONE exploration,
// as is each -verify column. Cells whose exhaustive exploration exceeds
// -budget states are reported as "> bound" lower bounds obtained by
// randomized depth-first search, exactly like the paper's df/rdf rows.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/icrns"
	"repro/internal/profflag"
	"repro/internal/sim"
	"repro/internal/wire"
)

func main() {
	prof := profflag.Register()
	var (
		table      = flag.Int("table", 1, "table to regenerate: 1 or 2")
		budget     = flag.Int("budget", 2_000_000, "state budget per exhaustive exploration")
		fallback   = flag.Int("fallback", 3_000_000, "state budget for the rdf lower-bound fallback")
		maxBytes   = flag.Int64("max-bytes", 0, "zone-memory budget in bytes per exploration: exceeding it fails the cell (0 = unbounded)")
		config     = flag.String("config", "default", "scheduling config: default, realistic-bus")
		cellSpec   = flag.String("cell", "", "single cell \"<req>,<col>\" (e.g. \"K2A,po\")")
		witness    = flag.Bool("witness", false, "with -cell: print a critical-instant trace realizing the WCRT")
		verify     = flag.String("verify", "", "verify the Figure 2/3 deadlines under a column (po, pno, sp, pj, bur)")
		seed       = flag.Int64("seed", 1, "seed for randomized search and simulation")
		simReps    = flag.Int("sim-reps", 20, "simulation replications (table 2)")
		simHorizon = flag.Int64("sim-horizon", 60000, "simulated ms per replication (table 2)")
		workers    = flag.Int("workers", runtime.NumCPU(),
			"parallel exploration workers per cell; exhaustive cells are schedule-independent, but budget-truncated \"> N\" lower bounds vary run-to-run unless -workers 1")
	)
	flag.Parse()
	stopProf, err := prof.Start()
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	var cfg icrns.Config
	switch *config {
	case "default":
		cfg = icrns.DefaultConfig()
	case "realistic-bus":
		cfg = icrns.RealisticBusConfig()
	default:
		fatal(fmt.Errorf("unknown config %q", *config))
	}
	cellOpts := icrns.CellOptions{
		Cfg: cfg, MaxStates: *budget, FallbackStates: *fallback, Seed: *seed,
		Workers: *workers, MaxBytes: *maxBytes, Monitor: prof.Monitor(),
	}

	if *verify != "" {
		_, col, err := lookup("K2A", *verify)
		if err != nil {
			fatal(err)
		}
		for _, combo := range []icrns.Combo{icrns.ComboCV, icrns.ComboAL} {
			verdicts, err := icrns.Verify(combo, col, cellOpts)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%v under %v:\n", combo, col)
			names := make([]string, 0, len(verdicts))
			for name := range verdicts {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				deadline := icrns.Deadlines()[name]
				status := "MET"
				if !verdicts[name] {
					status = "VIOLATED"
				}
				fmt.Printf("  %-16s < %6s ms : %s\n", name, deadline.FloatString(0), status)
			}
		}
		return
	}

	if *cellSpec != "" {
		parts := strings.SplitN(*cellSpec, ",", 2)
		if len(parts) != 2 {
			fatal(fmt.Errorf("cell spec must be \"<req>,<col>\""))
		}
		row, col, err := lookup(parts[0], parts[1])
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		res, err := icrns.Cell(row, col, cellOpts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s under %v: %s ms (%s) in %v\n",
			row.Label, col, res, res.Stats, time.Since(start).Round(time.Millisecond))
		if *witness && res.Exact {
			trace, _, err := icrns.Witness(row, col, cellOpts)
			if err != nil {
				fatal(err)
			}
			fmt.Println("\ncritical-instant trace:")
			fmt.Print(trace)
		}
		return
	}

	switch *table {
	case 1:
		start := time.Now()
		t, err := icrns.Table1(cellOpts)
		if err != nil {
			fatal(err)
		}
		fmt.Println("Table 1. Worst-case response time analysis results (in milliseconds)")
		fmt.Print(icrns.FormatTable1(t))
		fmt.Printf("(config %s, budget %d states, %v total)\n", *config, *budget, time.Since(start).Round(time.Second))
	case 2:
		start := time.Now()
		t, err := icrns.Table2(icrns.Table2Options{
			Cell: cellOpts,
			Sim:  sim.Options{Seed: *seed, HorizonMS: *simHorizon, Replications: *simReps},
		})
		if err != nil {
			fatal(err)
		}
		fmt.Println("Table 2. Worst-case response time results - comparison with other tools")
		fmt.Print(icrns.FormatTable2(t))
		fmt.Printf("(config %s, %v total)\n", *config, time.Since(start).Round(time.Second))
	default:
		fatal(fmt.Errorf("unknown table %d", *table))
	}
}

func lookup(reqName, colName string) (icrns.Row, icrns.Column, error) {
	var row icrns.Row
	found := false
	for _, r := range icrns.Table1Rows {
		if strings.EqualFold(r.Req, reqName) {
			row = r
			found = true
			break
		}
	}
	if !found {
		return row, 0, fmt.Errorf("unknown requirement %q (one of HandleTMC, K2A, A2V, AddressLookup)", reqName)
	}
	switch strings.ToLower(colName) {
	case "po":
		return row, icrns.ColPO, nil
	case "pno":
		return row, icrns.ColPNO, nil
	case "sp":
		return row, icrns.ColSP, nil
	case "pj":
		return row, icrns.ColPJ, nil
	case "bur":
		return row, icrns.ColBUR, nil
	}
	return row, 0, fmt.Errorf("unknown column %q (one of po, pno, sp, pj, bur)", colName)
}

func fatal(err error) {
	// Budget and abort failures carry the same named code here as in
	// taserved's wire responses, so scripts can match one taxonomy.
	if code := wire.CodeForError(err); code != "" {
		fmt.Fprintf(os.Stderr, "icrns: %s: %v\n", code, err)
	} else {
		fmt.Fprintln(os.Stderr, "icrns:", err)
	}
	os.Exit(1)
}
