// Command taserved serves the repository's whole analysis stack over HTTP:
// architecture descriptions (archcheck's JSON format) and timed-automata
// networks (tacheck's .ta format) are submitted as jobs, explored by the
// multi-query engine under a global CPU budget, and answered with the same
// wire types the CLIs' -json modes emit — bit-identical to a local run.
//
// Usage:
//
//	taserved [-addr host:port] [-cpu-tokens n] [-max-jobs n] [-keep-jobs n]
//	         [-deadline-ms n] [-shutdown-timeout d] [-pprof-addr host:port]
//	         [-node-id id -peers a,b,c -broker url]
//
// -pprof-addr (off by default) exposes net/http/pprof on a DEDICATED mux at
// a separate address, so live CPU/heap/goroutine profiles of a loaded server
// never share a listener with the public API; bind it to loopback.
//
// The cluster flags select the pub/sub backend: -node-id names this node,
// -peers lists the other members (comma-separated ids), and -broker names
// the shared broker ("mem://NAME" — the in-process broker registry; nodes in
// one process sharing a name form a fleet). Absent, the server runs the
// single-node local backend, behavior identical to every earlier release.
// All members must run identical admission configuration (-cpu-tokens,
// -memory-budget) so they derive identical content keys.
//
// The server prints "taserved: listening on http://HOST:PORT" once ready
// (with -addr :0 the kernel picks the port; the line is the way to learn
// it). SIGINT/SIGTERM trigger a graceful shutdown: the listener stops, every
// running job is cooperatively canceled mid-sweep, and the process exits 0
// once the jobs drain.
//
// See the README's "Serving analyses" section for the API and curl examples.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/pubsub"
)

// openBroker resolves a -broker url. Only the in-process registry is wired
// today ("mem://NAME"); the scheme seam is where a networked broker adapter
// would plug in.
func openBroker(url string) (pubsub.Broker, error) {
	name, ok := strings.CutPrefix(url, "mem://")
	if !ok || name == "" {
		return nil, fmt.Errorf("unsupported broker url %q (want mem://NAME)", url)
	}
	return pubsub.NamedBroker(name), nil
}

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7420", "listen address (use :0 for a kernel-assigned port)")
		cpuTokens   = flag.Int("cpu-tokens", runtime.NumCPU(), "global admission budget: max exploration workers running at once")
		maxJobs     = flag.Int("max-jobs", 64, "max jobs queued or running; beyond it submissions get 429")
		keepJobs    = flag.Int("keep-jobs", 256, "finished jobs retained as the result cache (LRU)")
		deadlineMS  = flag.Int64("deadline-ms", 0, "default per-job wall-clock budget in ms (0 = unbounded)")
		shutTimeout = flag.Duration("shutdown-timeout", 30*time.Second, "graceful shutdown drain budget")
		memBudget   = flag.Int64("memory-budget", 0, "global zone-memory budget in bytes; jobs hold a slice of it while running and fail alone past their grant (0 = unmetered)")
		pprofAddr   = flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty = disabled)")
		nodeID      = flag.String("node-id", "", "this node's id in a fleet (empty = single-node local backend)")
		peers       = flag.String("peers", "", "comma-separated ids of the other fleet members")
		brokerURL   = flag.String("broker", "", "pub/sub broker url, e.g. mem://default (required with -node-id)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		// A dedicated mux: the profiling endpoints never touch the API
		// handler, and registering them does not rely on the default mux.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fatal(err)
		}
		go func() {
			if err := http.Serve(pln, pm); err != nil {
				fmt.Fprintln(os.Stderr, "taserved: pprof:", err)
			}
		}()
		fmt.Printf("taserved: pprof on http://%s/debug/pprof/\n", pln.Addr())
	}

	cfg := serve.Config{
		CPUTokens:       *cpuTokens,
		MaxActiveJobs:   *maxJobs,
		MaxFinishedJobs: *keepJobs,
		DefaultDeadline: time.Duration(*deadlineMS) * time.Millisecond,
		MemoryBudget:    *memBudget,
	}
	if *nodeID != "" {
		// Fleet mode: route submissions by content hash over the shared
		// broker. Without -node-id the zero-value backends keep the exact
		// single-node behavior.
		broker, err := openBroker(*brokerURL)
		if err != nil {
			fatal(err)
		}
		var peerIDs []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerIDs = append(peerIDs, p)
			}
		}
		dispatch, results, err := pubsub.NewNode(broker, *nodeID, peerIDs, *keepJobs)
		if err != nil {
			fatal(err)
		}
		cfg.Dispatch = dispatch
		cfg.Results = results
		fmt.Printf("taserved: fleet node %s (%d members) via %s\n",
			*nodeID, len(dispatch.Nodes()), *brokerURL)
	} else if *peers != "" || *brokerURL != "" {
		fatal(errors.New("-peers/-broker require -node-id"))
	}
	srv := serve.New(cfg)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	fmt.Printf("taserved: listening on http://%s\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case s := <-sig:
		fmt.Printf("taserved: %v, shutting down\n", s)
	}

	// Graceful shutdown: stop accepting, then cancel running sweeps through
	// the engine's cooperative cancellation and wait for the jobs to drain.
	closeCtx, cancel := context.WithTimeout(context.Background(), *shutTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(closeCtx); err != nil {
		fmt.Fprintln(os.Stderr, "taserved: http shutdown:", err)
	}
	if err := srv.Shutdown(*shutTimeout); err != nil {
		fatal(err)
	}
	fmt.Println("taserved: drained, bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "taserved:", err)
	os.Exit(1)
}
