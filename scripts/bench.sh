#!/bin/sh
# bench.sh — run the Table 1 / Table 2 benchmarks and emit BENCH_<n>.json so
# future PRs have a perf trajectory to compare against.
#
# Usage:
#   scripts/bench.sh [out.json] [count]
#
# Defaults: out = BENCH_1.json (next free BENCH_<n>.json if it exists),
# count = 5 (go test -count). The benchmark pattern covers the exact-checker
# Table 1 cells, both Table 2 engine rows (sequential + Workers=NumCPU), the
# parallel-scaling series, and the multi-requirement rows comparing the
# batch engine (one exploration for all requirements, arch.AnalyzeAll)
# against the per-requirement baseline. Each record carries ns/op, B/op,
# allocs/op, and — where the benchmark reports a "states" metric —
# states/sec.
set -eu
cd "$(dirname "$0")/.."

out="${1:-}"
count="${2:-5}"
if [ -z "$out" ]; then
    n=1
    while [ -e "BENCH_${n}.json" ]; do n=$((n + 1)); done
    out="BENCH_${n}.json"
fi

pattern='Table1_HandleTMC_AL_po$|Table1_HandleTMC_AL_pno$|Table1_AddressLookup_po$|Table1_AddressLookup_pno$|Table2_|ParallelSup|MultiReq_'
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

cores="$( (nproc || getconf _NPROCESSORS_ONLN || echo 1) 2>/dev/null | head -n1 )"
# -failfast: a panicking benchmark must abort the run instead of scrolling
# past, and the core count is printed up front so parallel rows from a
# 1-CPU host are never mistaken for speedups.
echo "running on $cores core(s): go test -failfast -run XXX -bench '$pattern' -benchmem -count=$count ." >&2
# No tee: piping would launder go test's exit status through the pipe under
# plain /bin/sh (no pipefail), letting a panicking benchmark "pass".
go test -failfast -run XXX -bench "$pattern" -benchmem -count="$count" . > "$raw" || {
    cat "$raw" >&2
    echo "bench.sh: go test failed" >&2
    exit 1
}
cat "$raw" >&2

awk -v out_date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v cores="$cores" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    iters[name] += $2
    runs[name]++
    for (i = 3; i < NF; i++) {
        if ($(i + 1) == "ns/op")     ns[name]     += $i
        if ($(i + 1) == "B/op")      bytes[name]  += $i
        if ($(i + 1) == "allocs/op") allocs[name] += $i
        if ($(i + 1) == "states")    states[name] += $i
    }
}
END {
    printf "{\n  \"date\": \"%s\",\n  \"cpu\": \"%s\",\n  \"cores\": %d,\n  \"benchmarks\": [\n", out_date, cpu, cores
    first = 1
    for (name in runs) order[++n_names] = name
    # stable output: sort names
    asort_done = 0
    for (i = 1; i <= n_names; i++)
        for (j = i + 1; j <= n_names; j++)
            if (order[j] < order[i]) { t = order[i]; order[i] = order[j]; order[j] = t }
    for (i = 1; i <= n_names; i++) {
        name = order[i]
        r = runs[name]
        if (!first) printf ",\n"
        first = 0
        printf "    {\"name\": \"%s\", \"runs\": %d, \"ns_op\": %.0f, \"bytes_op\": %.0f, \"allocs_op\": %.0f", \
            name, r, ns[name] / r, bytes[name] / r, allocs[name] / r
        if (states[name] > 0 && ns[name] > 0)
            printf ", \"states\": %.0f, \"states_per_sec\": %.0f", \
                states[name] / r, (states[name] / r) / (ns[name] / r / 1e9)
        printf "}"
    }
    printf "\n  ]\n}\n"
}' "$raw" > "$out"

echo "wrote $out" >&2
