#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke of the taserved analysis service.
#
# Builds taserved, boots it on a kernel-assigned port, drives the full job
# lifecycle with the typed Go client (scripts/servesmoke: healthz, arch
# submit → poll → result, result-cache hit on resubmission, a combined ta
# query set, metrics), then checks a graceful SIGTERM shutdown (must exit 0
# after draining). Used by the CI serve-smoke job and runnable locally:
#
#   scripts/serve_smoke.sh
#
# Requires: go.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pid=""
trap '[ -n "${pid:-}" ] && kill -9 "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/taserved" ./cmd/taserved

log="$workdir/serve.log"
"$workdir/taserved" -addr 127.0.0.1:0 >"$log" 2>&1 &
pid=$!

url=""
for _ in $(seq 1 100); do
  url=$(sed -n 's/^taserved: listening on //p' "$log" | head -n 1)
  [ -n "$url" ] && break
  kill -0 "$pid" 2>/dev/null || { echo "taserved died during startup:"; cat "$log"; exit 1; }
  sleep 0.1
done
[ -n "$url" ] || { echo "taserved did not report its address:"; cat "$log"; exit 1; }
echo "== taserved at $url"

go run ./scripts/servesmoke -url "$url"

echo "== metrics exposition lint"
go run ./scripts/metricslint -url "$url/v1/metrics"

echo "== graceful shutdown"
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
[ "$rc" -eq 0 ] || { echo "taserved exited $rc on SIGTERM:"; cat "$log"; exit 1; }
grep -q 'drained, bye' "$log"

echo "serve shutdown OK"
