#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke of the taserved analysis service.
#
# Builds taserved, boots it on a kernel-assigned port, and drives the full
# job lifecycle with curl against the checked-in tiny models: healthz,
# arch submit → poll → result, result-cache hit on resubmission, a combined
# ta query set, metrics, and a graceful SIGTERM shutdown (must exit 0 after
# draining). Used by the CI serve-smoke job and runnable locally:
#
#   scripts/serve_smoke.sh
#
# Requires: go, curl, jq.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pid=""
trap '[ -n "${pid:-}" ] && kill -9 "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/taserved" ./cmd/taserved

log="$workdir/serve.log"
"$workdir/taserved" -addr 127.0.0.1:0 >"$log" 2>&1 &
pid=$!

url=""
for _ in $(seq 1 100); do
  url=$(sed -n 's/^taserved: listening on //p' "$log" | head -n 1)
  [ -n "$url" ] && break
  kill -0 "$pid" 2>/dev/null || { echo "taserved died during startup:"; cat "$log"; exit 1; }
  sleep 0.1
done
[ -n "$url" ] || { echo "taserved did not report its address:"; cat "$log"; exit 1; }
echo "== taserved at $url"

echo "== healthz"
curl -fsS "$url/healthz" | jq -e '.ok == true' >/dev/null

echo "== arch submit"
req=$(jq -n --rawfile model testdata/tiny.json \
  '{kind:"arch", model:$model, options:{horizon_ms:100}}')
job=$(curl -fsS -X POST --data "$req" "$url/v1/jobs" | jq -r .job_id)
[ -n "$job" ] && [ "$job" != null ]

echo "== poll $job"
state=""
for _ in $(seq 1 200); do
  state=$(curl -fsS "$url/v1/jobs/$job" | jq -r .state)
  case "$state" in
    done) break ;;
    failed|canceled) echo "job ended $state:"; curl -fsS "$url/v1/jobs/$job"; exit 1 ;;
  esac
  sleep 0.1
done
[ "$state" = done ] || { echo "job stuck in state $state"; exit 1; }

echo "== result"
curl -fsS "$url/v1/jobs/$job/result" \
  | jq -e '.results | length == 2 and (.[0].req == "e2e") and (.[0].ms == "30")' >/dev/null

echo "== result-cache hit on resubmission"
curl -fsS -X POST --data "$req" "$url/v1/jobs" \
  | jq -e '.state == "done" and .created == false' >/dev/null
curl -fsS "$url/metrics" | grep -qx 'taserved_explorations_total 1'

echo "== ta submit (combined sup + deadlock sweep)"
ta_req=$(jq -n --rawfile model testdata/tiny.ta \
  '{kind:"ta", model:$model,
    queries:[{kind:"sup", clock:"x", pred:"RAD.busy"}, {kind:"deadlock"}],
    options:{max_const:20}}')
ta_job=$(curl -fsS -X POST --data "$ta_req" "$url/v1/jobs" | jq -r .job_id)
for _ in $(seq 1 200); do
  state=$(curl -fsS "$url/v1/jobs/$ta_job" | jq -r .state)
  [ "$state" = done ] && break
  sleep 0.1
done
[ "$state" = done ] || { echo "ta job stuck in state $state"; exit 1; }
curl -fsS "$url/v1/jobs/$ta_job/result" \
  | jq -e '.queries[0].sup == "<=3" and .queries[1].verdict == true' >/dev/null

echo "== graceful shutdown"
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
[ "$rc" -eq 0 ] || { echo "taserved exited $rc on SIGTERM:"; cat "$log"; exit 1; }
grep -q 'drained, bye' "$log"

echo "serve smoke OK"
