// Command benchgate turns raw `go test -bench` output into a pass/fail CI
// verdict against a checked-in baseline.
//
// The gate is intentionally asymmetric, matching what is actually stable on
// shared runners:
//
//   - allocs/op is an EXACT ceiling: the gated benchmarks run the sequential
//     engine with fixed seeds, so their allocation counts are deterministic.
//     Any increase is a real regression (usually a pooled object escaping the
//     recycling protocol) and fails the gate. A decrease passes with a notice
//     to refresh the baseline. Benchmarks whose compile phase makes the count
//     wobble by a few (map iteration order) carry a small explicit
//     allocs_slack in the baseline instead of loosening the whole gate.
//   - B/op is a NEAR-EXACT ceiling (bytes_op + bytes_slack) on entries that
//     set bytes_op: stored-zone compression is a headline number of this
//     repo, so a memory regression must fail CI like an alloc leak does. The
//     small slack absorbs size-class rounding and compile-phase map wobble.
//   - ns/op is a GENEROUS ceiling: baseline × -ns-factor (default 4). Shared
//     runners are noisy, so only catastrophic slowdowns (accidental O(n³)
//     re-closure, lost pooling) should trip it.
//   - A gated benchmark missing from the output fails, so renaming or
//     deleting a benchmark cannot silently drop it from the gate.
//
// Multiple -count runs are aggregated by MINIMUM, the least noisy statistic
// for both metrics.
//
// Usage:
//
//	go test -run XXX -bench 'Table1_...' -benchtime=3x -count=3 . | tee bench.txt
//	go run ./scripts -baseline scripts/bench_baseline.json bench.txt
//
// Refresh the baseline after an intentional perf change with:
//
//	go run ./scripts -baseline scripts/bench_baseline.json -update bench.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type baselineEntry struct {
	NsOp     float64 `json:"ns_op"`
	AllocsOp float64 `json:"allocs_op"`
	// AllocsSlack widens the allocs/op ceiling for benchmarks whose counts
	// are not bit-deterministic (map iteration order during model compile
	// shifts a few allocations run to run). Zero means exact. Real
	// regressions — pooled objects escaping their recycling protocol — cost
	// at least one allocation per stored state, thousands here, so a slack
	// of a few dozen keeps the gate meaningful.
	AllocsSlack float64 `json:"allocs_slack,omitempty"`
	// BytesOp, when nonzero, gates B/op as a ceiling of bytes_op+bytes_slack.
	// The gated sweeps are sequential and seeded, so their allocated bytes
	// move only with real footprint changes; the slack covers allocator
	// size-class rounding, not regressions.
	BytesOp    float64 `json:"bytes_op,omitempty"`
	BytesSlack float64 `json:"bytes_slack,omitempty"`
}

type baseline struct {
	// NsFactor is the slowdown tolerated on ns/op before failing; allocs/op
	// has no tolerance. A -ns-factor flag overrides it.
	NsFactor   float64                  `json:"ns_factor"`
	Benchmarks map[string]baselineEntry `json:"benchmarks"`
}

type measurement struct {
	ns       float64
	allocs   float64
	bytes    float64
	hasNs    bool
	hasAll   bool
	hasBytes bool
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s`)

func main() {
	basePath := flag.String("baseline", "scripts/bench_baseline.json", "baseline JSON path")
	update := flag.Bool("update", false, "rewrite the baseline from the measured values instead of gating")
	nsFactor := flag.Float64("ns-factor", 0, "override the baseline's ns/op tolerance factor (0 = use baseline)")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	got, err := parseBench(in)
	if err != nil {
		fatal(err)
	}
	if len(got) == 0 {
		fatal(fmt.Errorf("no benchmark result lines found in input"))
	}

	if *update {
		if err := writeBaseline(*basePath, got, *nsFactor); err != nil {
			fatal(err)
		}
		fmt.Printf("benchgate: wrote %s with %d benchmarks\n", *basePath, len(got))
		return
	}

	data, err := os.ReadFile(*basePath)
	if err != nil {
		fatal(err)
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", *basePath, err))
	}
	factor := base.NsFactor
	if *nsFactor > 0 {
		factor = *nsFactor
	}
	if factor <= 0 {
		factor = 4
	}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		want := base.Benchmarks[name]
		m, ok := got[name]
		switch {
		case !ok:
			fmt.Printf("FAIL %s: gated benchmark missing from output\n", name)
			failed = true
			continue
		case !m.hasAll:
			fmt.Printf("FAIL %s: no allocs/op in output (run with -benchmem or b.ReportAllocs)\n", name)
			failed = true
			continue
		}
		pass := true
		if m.allocs > want.AllocsOp+want.AllocsSlack {
			fmt.Printf("FAIL %s: allocs/op %.0f > baseline %.0f+%.0f slack\n",
				name, m.allocs, want.AllocsOp, want.AllocsSlack)
			pass = false
		} else if m.allocs < want.AllocsOp {
			fmt.Printf("note %s: allocs/op improved %.0f -> %.0f; refresh the baseline (benchgate -update)\n",
				name, want.AllocsOp, m.allocs)
		}
		if want.BytesOp > 0 {
			switch {
			case !m.hasBytes:
				fmt.Printf("FAIL %s: no B/op in output (run with -benchmem or b.ReportAllocs)\n", name)
				pass = false
			case m.bytes > want.BytesOp+want.BytesSlack:
				fmt.Printf("FAIL %s: B/op %.0f > baseline %.0f+%.0f slack\n",
					name, m.bytes, want.BytesOp, want.BytesSlack)
				pass = false
			case m.bytes < want.BytesOp:
				fmt.Printf("note %s: B/op improved %.0f -> %.0f; refresh the baseline (benchgate -update)\n",
					name, want.BytesOp, m.bytes)
			}
		}
		limit := want.NsOp * factor
		if m.ns > limit {
			fmt.Printf("FAIL %s: ns/op %.0f > %.0f (baseline %.0f × factor %g)\n",
				name, m.ns, limit, want.NsOp, factor)
			pass = false
		}
		if pass {
			fmt.Printf("ok   %s: allocs/op %.0f (baseline %.0f), ns/op %.0f (limit %.0f)\n",
				name, m.allocs, want.AllocsOp, m.ns, limit)
		} else {
			failed = true
		}
	}
	if failed {
		fmt.Println("benchgate: FAILED")
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d/%d gated benchmarks within bounds\n", len(names), len(names))
}

// parseBench extracts per-benchmark minima from `go test -bench` text.
func parseBench(in io.Reader) (map[string]measurement, error) {
	out := map[string]measurement{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		match := benchLine.FindStringSubmatch(line)
		if match == nil {
			continue
		}
		name := match[1]
		fields := strings.Fields(line)
		m := out[name]
		for i := 2; i+1 < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				if !m.hasNs || v < m.ns {
					m.ns = v
				}
				m.hasNs = true
			case "allocs/op":
				if !m.hasAll || v < m.allocs {
					m.allocs = v
				}
				m.hasAll = true
			case "B/op":
				if !m.hasBytes || v < m.bytes {
					m.bytes = v
				}
				m.hasBytes = true
			}
		}
		out[name] = m
	}
	return out, sc.Err()
}

func writeBaseline(path string, got map[string]measurement, nsFactor float64) error {
	if nsFactor <= 0 {
		nsFactor = 4
	}
	b := baseline{NsFactor: nsFactor, Benchmarks: map[string]baselineEntry{}}
	// Carry slack settings (and a hand-set ns factor) over from an existing
	// baseline so -update refreshes the numbers without losing the policy.
	if data, err := os.ReadFile(path); err == nil {
		var old baseline
		if json.Unmarshal(data, &old) == nil {
			if nsFactor == 4 && old.NsFactor > 0 {
				b.NsFactor = old.NsFactor
			}
			for name, m := range got {
				if o, ok := old.Benchmarks[name]; ok {
					e := baselineEntry{NsOp: m.ns, AllocsOp: m.allocs, AllocsSlack: o.AllocsSlack}
					// A benchmark opts into the bytes gate by carrying
					// bytes_op in the baseline; -update refreshes the number
					// and keeps the slack policy.
					if o.BytesOp > 0 {
						e.BytesOp = m.bytes
						e.BytesSlack = o.BytesSlack
					}
					b.Benchmarks[name] = e
				}
			}
		}
	}
	for name, m := range got {
		if _, ok := b.Benchmarks[name]; !ok {
			b.Benchmarks[name] = baselineEntry{NsOp: m.ns, AllocsOp: m.allocs}
		}
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
