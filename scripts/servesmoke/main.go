// Command servesmoke drives the taserved HTTP contract end to end with the
// typed Go client — the programmatic successor of the old curl loop in
// scripts/serve_smoke.sh. Two modes:
//
//	servesmoke -url http://127.0.0.1:PORT
//	    drive an already-running server (the serve_smoke.sh wrapper boots the
//	    real binary, points this tool at it, then checks graceful shutdown)
//
//	servesmoke -cluster 3
//	    boot an N-node in-process fleet over the shared in-memory broker and
//	    verify the fleet invariants: one exploration cluster-wide, remote
//	    cache hits on the other frontends, and byte-identical result bodies
//	    from every node
//
// Run from the repository root (or set -testdata); exits non-zero with a
// "servesmoke: ..." diagnostic on the first failed check.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/serve/api"
	"repro/internal/serve/client"
	"repro/internal/serve/pubsub"
	"repro/internal/wire"
)

func main() {
	var (
		url      = flag.String("url", "", "base url of a running taserved to smoke")
		cluster  = flag.Int("cluster", 0, "boot an in-process fleet of this many nodes and smoke it")
		testdata = flag.String("testdata", "testdata", "directory holding tiny.json and tiny.ta")
	)
	flag.Parse()
	switch {
	case *url != "" && *cluster > 0:
		fail("pass -url or -cluster, not both")
	case *url != "":
		smokeSingle(*url, *testdata)
	case *cluster > 1:
		smokeCluster(*cluster, *testdata)
	default:
		fail("pass -url http://... or -cluster N (N >= 2)")
	}
	fmt.Println("serve smoke OK")
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "servesmoke: "+format+"\n", args...)
	os.Exit(1)
}

func step(name string) { fmt.Println("==", name) }

func readModel(dir, name string) string {
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		fail("reading model: %v", err)
	}
	return string(data)
}

// archRequest is the tiny arch sweep every smoke mode submits: two
// requirements, known verdicts ("e2e" meets 30ms).
func archRequest(dir string) *api.SubmitRequest {
	return &api.SubmitRequest{Kind: "arch", Model: readModel(dir, "tiny.json"),
		Options: api.SubmitOptions{HorizonMS: 100}}
}

// taRequest is the combined ta query set: a sup bound plus a deadlock sweep.
func taRequest(dir string) *api.SubmitRequest {
	return &api.SubmitRequest{Kind: "ta", Model: readModel(dir, "tiny.ta"),
		Queries: []wire.TAQuery{
			{Kind: "sup", Clock: "x", Pred: "RAD.busy"},
			{Kind: "deadlock"},
		},
		Options: api.SubmitOptions{MaxConst: 20}}
}

// submitAwait submits and polls to a terminal state, failing unless done.
func submitAwait(ctx context.Context, c *client.Client, req *api.SubmitRequest) *api.StatusResponse {
	sr, err := c.Submit(ctx, req)
	if err != nil {
		fail("submit: %v", err)
	}
	st, err := c.Await(ctx, sr.JobID, 25*time.Millisecond)
	if err != nil {
		fail("awaiting %s: %v", sr.JobID, err)
	}
	if st.State != api.StateDone {
		fail("job %s ended %s (%s)", sr.JobID, st.State, st.Error)
	}
	return st
}

// checkArchResult decodes a tiny.json result body and verifies the known
// verdicts, mirroring the old jq assertions.
func checkArchResult(body []byte) {
	var res struct {
		Results []struct {
			Req string `json:"req"`
			MS  string `json:"ms"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		fail("decoding arch result: %v", err)
	}
	if len(res.Results) != 2 || res.Results[0].Req != "e2e" || res.Results[0].MS != "30" {
		fail("arch result mismatch: %+v", res.Results)
	}
}

// checkTAResult verifies the combined ta query verdicts.
func checkTAResult(body []byte) {
	var res struct {
		Queries []struct {
			Sup     string `json:"sup"`
			Verdict bool   `json:"verdict"`
		} `json:"queries"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		fail("decoding ta result: %v", err)
	}
	if len(res.Queries) != 2 || res.Queries[0].Sup != "<=3" || !res.Queries[1].Verdict {
		fail("ta result mismatch: %+v", res.Queries)
	}
}

// metric fetches one counter from a node, failing if absent.
func metric(ctx context.Context, c *client.Client, name string) int64 {
	text, err := c.Metrics(ctx)
	if err != nil {
		fail("metrics: %v", err)
	}
	v, ok := client.Metric(text, name)
	if !ok {
		fail("metric %s missing from exposition", name)
	}
	return v
}

// jobSpanFamilies are the per-job latency histograms every node must expose.
var jobSpanFamilies = []string{
	"taserved_job_queue_wait_seconds",
	"taserved_job_admission_wait_seconds",
	"taserved_job_compute_seconds",
	"taserved_job_replicate_seconds",
}

// pubsubFamilies are the dispatch-backend histograms cluster nodes must expose.
var pubsubFamilies = []string{
	"taserved_pubsub_dispatch_seconds",
	"taserved_pubsub_announce_seconds",
	"taserved_pubsub_adopt_seconds",
}

// requireFamilies asserts the exposition declares (TYPE line) every named
// family and passes the shared obs.Lint validator.
func requireFamilies(ctx context.Context, c *client.Client, who string, families ...string) {
	text, err := c.Metrics(ctx)
	if err != nil {
		fail("%s metrics: %v", who, err)
	}
	for _, f := range families {
		if !strings.Contains(text, "# TYPE "+f+" ") {
			fail("%s: metric family %s missing from exposition", who, f)
		}
	}
	if errs := obs.Lint(strings.NewReader(text)); len(errs) > 0 {
		fail("%s: exposition fails lint: %v", who, errs[0])
	}
}

// checkProfile fetches a terminal job's profile and verifies the lifecycle
// spans plus (when the serving node ran the sweep) the engine phases.
func checkProfile(ctx context.Context, c *client.Client, id string, wantSweep bool) {
	pr, err := c.Profile(ctx, id)
	if err != nil {
		fail("profile %s: %v", id, err)
	}
	if pr.WallNS <= 0 || len(pr.Spans) == 0 {
		fail("profile %s: wall_ns=%d spans=%d, want both positive", id, pr.WallNS, len(pr.Spans))
	}
	have := map[string]bool{}
	for _, sp := range pr.Spans {
		have[sp.Name] = true
	}
	for _, name := range []string{"queue_wait", "compute"} {
		if !have[name] {
			fail("profile %s: span %s missing (got %v)", id, name, pr.Spans)
		}
	}
	if !wantSweep {
		return
	}
	var sweep struct {
		Workers int        `json:"workers"`
		Phases  []obs.Span `json:"phases"`
		Series  []struct {
			Samples []json.RawMessage `json:"samples"`
		} `json:"series"`
	}
	if err := json.Unmarshal(pr.Sweep, &sweep); err != nil || len(pr.Sweep) == 0 {
		fail("profile %s: sweep missing or undecodable: %v", id, err)
	}
	phases := map[string]bool{}
	for _, p := range sweep.Phases {
		phases[p.Name] = true
	}
	for _, name := range []string{"parse", "explore"} {
		if !phases[name] {
			fail("profile %s: sweep phase %s missing (got %+v)", id, name, sweep.Phases)
		}
	}
	if sweep.Workers < 1 || len(sweep.Series) != sweep.Workers {
		fail("profile %s: %d series for %d workers", id, len(sweep.Series), sweep.Workers)
	}
}

// checkMetricsAlias pins /metrics to /v1/metrics byte-for-byte.
func checkMetricsAlias(url string) {
	get := func(path string) string {
		resp, err := http.Get(url + path)
		if err != nil {
			fail("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			fail("GET %s: HTTP %d err=%v", path, resp.StatusCode, err)
		}
		return string(body)
	}
	if a, b := get("/v1/metrics"), get("/metrics"); a != b {
		fail("/metrics is not byte-identical to /v1/metrics")
	}
}

// smokeSingle drives one already-running server through the full lifecycle:
// health, arch submit/poll/result, cache hit on resubmission, combined ta
// query set, metrics.
func smokeSingle(url, testdata string) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	c := client.New(url, nil)

	step("healthz")
	if _, ok, err := c.Healthz(ctx); err != nil || !ok {
		fail("healthz ok=%v err=%v", ok, err)
	}

	step("arch submit + poll")
	req := archRequest(testdata)
	st := submitAwait(ctx, c, req)

	step("result")
	body, err := c.Result(ctx, st.JobID)
	if err != nil {
		fail("result: %v", err)
	}
	checkArchResult(body)

	step("result-cache hit on resubmission")
	sr, err := c.Submit(ctx, req)
	if err != nil {
		fail("resubmit: %v", err)
	}
	if sr.State != api.StateDone || sr.Created {
		fail("resubmission state=%s created=%v, want cached done", sr.State, sr.Created)
	}
	if n := metric(ctx, c, "taserved_explorations_total"); n != 1 {
		fail("explorations after cached resubmit: %d, want 1", n)
	}

	step("ta submit (combined sup + deadlock sweep)")
	st = submitAwait(ctx, c, taRequest(testdata))
	body, err = c.Result(ctx, st.JobID)
	if err != nil {
		fail("ta result: %v", err)
	}
	checkTAResult(body)

	step("job profile (spans + sweep phases)")
	checkProfile(ctx, c, st.JobID, true)

	step("histogram/gauge families + exposition lint")
	requireFamilies(ctx, c, "node", append([]string{
		"taserved_jobs_active", "taserved_stored_zone_bytes",
	}, jobSpanFamilies...)...)

	step("/metrics alias byte-identical to /v1/metrics")
	checkMetricsAlias(url)
}

// fleetNode is one in-process fleet member: a manager over the shared broker
// behind a real TCP listener.
type fleetNode struct {
	id     string
	server *serve.Server
	http   *http.Server
	client *client.Client
}

// smokeCluster boots n fleet nodes over one in-memory broker and checks the
// cluster invariants the CI cluster-smoke job guards: exactly one exploration
// cluster-wide per distinct submission, remote cache hits when the other
// frontends answer, and byte-identical result bodies from every node.
func smokeCluster(n int, testdata string) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	broker := pubsub.NewMemBroker()
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("n%d", i)
	}
	nodes := make([]*fleetNode, n)
	for i, id := range ids {
		dispatch, results, err := pubsub.NewNode(broker, id, ids, 256)
		if err != nil {
			fail("node %s: %v", id, err)
		}
		// Identical admission config on every member — required for
		// content-key agreement across the fleet.
		srv := serve.New(serve.Config{CPUTokens: 2, Dispatch: dispatch, Results: results})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fail("node %s listen: %v", id, err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go func() { _ = hs.Serve(ln) }()
		nodes[i] = &fleetNode{id: id, server: srv, http: hs,
			client: client.New("http://"+ln.Addr().String(), nil)}
	}
	defer func() {
		for _, nd := range nodes {
			_ = nd.http.Close()
			_ = nd.server.Shutdown(10 * time.Second)
		}
	}()

	step(fmt.Sprintf("cluster of %d: arch submit via %s", n, nodes[0].id))
	req := archRequest(testdata)
	st := submitAwait(ctx, nodes[0].client, req)

	step("replicated cache answers every frontend")
	for _, nd := range nodes[1:] {
		sr, err := nd.client.Submit(ctx, req)
		if err != nil {
			fail("resubmit via %s: %v", nd.id, err)
		}
		if sr.JobID != st.JobID {
			fail("%s derived job id %s, want %s", nd.id, sr.JobID, st.JobID)
		}
		if sr.State != api.StateDone || sr.Created {
			fail("%s resubmission state=%s created=%v, want cached done", nd.id, sr.State, sr.Created)
		}
	}

	step("byte-identical results from every node")
	var first []byte
	for i, nd := range nodes {
		body, err := nd.client.Result(ctx, st.JobID)
		if err != nil {
			fail("result via %s: %v", nd.id, err)
		}
		if i == 0 {
			checkArchResult(body)
			first = body
		} else if string(body) != string(first) {
			fail("%s serves different bytes than %s", nd.id, nodes[0].id)
		}
	}

	step("one exploration cluster-wide, remote hits counted")
	var explorations, remoteHits int64
	for _, nd := range nodes {
		explorations += metric(ctx, nd.client, "taserved_explorations_total")
		remoteHits += metric(ctx, nd.client, "taserved_remote_hits_total")
	}
	if explorations != 1 {
		fail("cluster ran %d explorations for one submission, want 1", explorations)
	}
	if remoteHits < int64(n-1) {
		fail("only %d remote hits across %d frontends, want >= %d", remoteHits, n, n-1)
	}

	step("ta job through another frontend")
	taReq := taRequest(testdata)
	st = submitAwait(ctx, nodes[n-1].client, taReq)
	// Resubmitting on the first frontend adopts the replicated completion
	// into its own table, so it can serve the result bytes too.
	if sr, err := nodes[0].client.Submit(ctx, taReq); err != nil || sr.State != api.StateDone {
		fail("ta resubmit via %s: state=%v err=%v", nodes[0].id, sr, err)
	}
	body, err := nodes[0].client.Result(ctx, st.JobID)
	if err != nil {
		fail("ta result via %s: %v", nodes[0].id, err)
	}
	checkTAResult(body)

	step("profile served for the frontend's job")
	// The submitting frontend always has the job; whether its profile carries
	// a sweep depends on who owned the key, so only the spans are required.
	checkProfile(ctx, nodes[n-1].client, st.JobID, false)

	step("histogram families on every node (pubsub included)")
	for _, nd := range nodes {
		requireFamilies(ctx, nd.client, nd.id, append(append([]string{},
			jobSpanFamilies...), pubsubFamilies...)...)
	}
}
