// Command metricslint validates a Prometheus text exposition (format 0.0.4)
// with the shared internal/obs validator: well-formed TYPE/HELP and sample
// lines, no duplicate series, and consistent histogram families (ascending
// cumulative le buckets ending in +Inf, matching _sum/_count). The serve-smoke
// CI job runs it against a live node's /v1/metrics.
//
// Usage:
//
//	metricslint -url http://127.0.0.1:8080/v1/metrics
//	metricslint < exposition.txt
//
// Exit status: 0 when the exposition is valid, 1 with one line per violation
// otherwise.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/obs"
)

func main() {
	url := flag.String("url", "", "scrape this URL instead of reading stdin")
	flag.Parse()

	var in io.Reader = os.Stdin
	if *url != "" {
		hc := &http.Client{Timeout: 10 * time.Second}
		resp, err := hc.Get(*url)
		if err != nil {
			fmt.Fprintln(os.Stderr, "metricslint:", err)
			os.Exit(1)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fmt.Fprintf(os.Stderr, "metricslint: %s answered HTTP %d\n", *url, resp.StatusCode)
			os.Exit(1)
		}
		in = resp.Body
	}

	errs := obs.Lint(in)
	for _, err := range errs {
		fmt.Fprintln(os.Stderr, "metricslint:", err)
	}
	if len(errs) > 0 {
		os.Exit(1)
	}
}
